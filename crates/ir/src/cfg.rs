//! A small register-based control-flow representation.
//!
//! The paper's flow compiles C code to the MachSUIF intermediate representation and runs
//! a classic if-conversion pass before extracting per-basic-block dataflow graphs. This
//! module provides the minimal control-flow substrate needed to reproduce that flow:
//! sequential instructions over virtual registers, organised in basic blocks with
//! branch/jump/return terminators. The if-conversion and lowering passes live in the
//! `ise-passes` crate; [`Cfg::block_to_dfg`] performs the dataflow extraction.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::dfg::Dfg;
use crate::node::{Node, Operand};
use crate::opcode::Opcode;

/// A virtual register of the control-flow representation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a basic block within a [`Cfg`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Raw index of the block.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// An operand of a sequential instruction: a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RegOrImm {
    /// A virtual register.
    Reg(Reg),
    /// An immediate constant.
    Imm(i64),
}

impl From<Reg> for RegOrImm {
    fn from(r: Reg) -> Self {
        RegOrImm::Reg(r)
    }
}

impl From<i64> for RegOrImm {
    fn from(v: i64) -> Self {
        RegOrImm::Imm(v)
    }
}

impl fmt::Display for RegOrImm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegOrImm::Reg(r) => write!(f, "{r}"),
            RegOrImm::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// A sequential three-address instruction.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Inst {
    /// Destination register (`None` for stores).
    pub dst: Option<Reg>,
    /// Operation performed.
    pub opcode: Opcode,
    /// Source operands.
    pub args: Vec<RegOrImm>,
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(dst) = self.dst {
            write!(f, "{dst} = ")?;
        }
        write!(f, "{}", self.opcode)?;
        for (i, a) in self.args.iter().enumerate() {
            if i == 0 {
                write!(f, " {a}")?;
            } else {
                write!(f, ", {a}")?;
            }
        }
        Ok(())
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on `cond != 0`.
    Branch {
        /// Condition register.
        cond: Reg,
        /// Successor taken when the condition is non-zero.
        then_block: BlockId,
        /// Successor taken when the condition is zero.
        else_block: BlockId,
    },
    /// Function return; the listed registers are live out of the function.
    Return(Vec<Reg>),
}

impl Terminator {
    /// Successor blocks of the terminator.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => vec![*then_block, *else_block],
            Terminator::Return(_) => Vec::new(),
        }
    }
}

/// A basic block of sequential instructions.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CfgBlock {
    /// Name of the block.
    pub name: String,
    /// Instructions, in program order.
    pub insts: Vec<Inst>,
    /// Terminator of the block.
    pub terminator: Terminator,
    /// Profiled execution count.
    pub exec_count: u64,
}

/// A function in control-flow form.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cfg {
    /// Name of the function.
    pub name: String,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<CfgBlock>,
}

impl Cfg {
    /// Creates an empty function.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Cfg {
            name: name.into(),
            blocks: Vec::new(),
        }
    }

    /// Appends a block and returns its identifier.
    pub fn add_block(&mut self, block: CfgBlock) -> BlockId {
        self.blocks.push(block);
        BlockId(u32::try_from(self.blocks.len() - 1).expect("block count fits in u32"))
    }

    /// Returns the block with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &CfgBlock {
        &self.blocks[id.index()]
    }

    /// Predecessor blocks of `id`.
    #[must_use]
    pub fn predecessors(&self, id: BlockId) -> Vec<BlockId> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.terminator.successors().contains(&id))
            .map(|(i, _)| BlockId(i as u32))
            .collect()
    }

    /// Registers defined in block `id`.
    #[must_use]
    pub fn defined_regs(&self, id: BlockId) -> BTreeSet<Reg> {
        self.block(id).insts.iter().filter_map(|i| i.dst).collect()
    }

    /// Registers used in block `id` (including by the terminator) before any definition
    /// within the block — i.e. the block's live-in candidates.
    #[must_use]
    pub fn upward_exposed_regs(&self, id: BlockId) -> BTreeSet<Reg> {
        let block = self.block(id);
        let mut defined = BTreeSet::new();
        let mut exposed = BTreeSet::new();
        for inst in &block.insts {
            for arg in &inst.args {
                if let RegOrImm::Reg(r) = arg {
                    if !defined.contains(r) {
                        exposed.insert(*r);
                    }
                }
            }
            if let Some(dst) = inst.dst {
                defined.insert(dst);
            }
        }
        match &block.terminator {
            Terminator::Branch { cond, .. } => {
                if !defined.contains(cond) {
                    exposed.insert(*cond);
                }
            }
            Terminator::Return(regs) => {
                for r in regs {
                    if !defined.contains(r) {
                        exposed.insert(*r);
                    }
                }
            }
            Terminator::Jump(_) => {}
        }
        exposed
    }

    /// Registers defined in `id` that are observable after the block: used (upward
    /// exposed) in some other block, returned by some block, or used by this block's own
    /// terminator.
    #[must_use]
    pub fn live_out_regs(&self, id: BlockId) -> BTreeSet<Reg> {
        let defined = self.defined_regs(id);
        let mut live = BTreeSet::new();
        for (i, block) in self.blocks.iter().enumerate() {
            let other = BlockId(i as u32);
            let wanted: BTreeSet<Reg> = if other == id {
                match &block.terminator {
                    Terminator::Return(regs) => regs.iter().copied().collect(),
                    Terminator::Branch { cond, .. } => [*cond].into_iter().collect(),
                    Terminator::Jump(_) => BTreeSet::new(),
                }
            } else {
                let mut wanted = self.upward_exposed_regs(other);
                if let Terminator::Return(regs) = &block.terminator {
                    wanted.extend(regs.iter().copied());
                }
                wanted
            };
            for r in wanted {
                if defined.contains(&r) {
                    live.insert(r);
                }
            }
        }
        live
    }

    /// Extracts the dataflow graph `G⁺` of one basic block.
    ///
    /// Upward-exposed registers become input variables; registers live after the block
    /// become output variables. Redefinitions within the block are resolved to the last
    /// reaching definition, as the graph is a pure dataflow view of the block.
    #[must_use]
    pub fn block_to_dfg(&self, id: BlockId) -> Dfg {
        let block = self.block(id);
        let mut dfg = Dfg::new(block.name.clone());
        dfg.set_exec_count(block.exec_count);
        // Current value of each register within the block.
        let mut current: BTreeMap<Reg, Operand> = BTreeMap::new();
        let read_value =
            |dfg: &mut Dfg, current: &mut BTreeMap<Reg, Operand>, arg: &RegOrImm| match arg {
                RegOrImm::Imm(v) => Operand::Imm(*v),
                RegOrImm::Reg(r) => *current
                    .entry(*r)
                    .or_insert_with(|| Operand::Input(dfg.add_input(format!("r{}", r.0)))),
            };
        for inst in &block.insts {
            let operands: Vec<Operand> = inst
                .args
                .iter()
                .map(|a| read_value(&mut dfg, &mut current, a))
                .collect();
            let node = dfg.add_node(Node::new(inst.opcode, operands));
            if let Some(dst) = inst.dst {
                current.insert(dst, Operand::Node(node));
            }
        }
        for reg in self.live_out_regs(id) {
            if let Some(value) = current.get(&reg) {
                dfg.add_output(format!("r{}", reg.0), *value);
            }
        }
        dfg
    }

    /// Extracts dataflow graphs for every block of the function.
    #[must_use]
    pub fn to_dfgs(&self) -> Vec<Dfg> {
        (0..self.blocks.len())
            .map(|i| self.block_to_dfg(BlockId(i as u32)))
            .collect()
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "function {}:", self.name)?;
        for (i, block) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{i} ({}, x{}):", block.name, block.exec_count)?;
            for inst in &block.insts {
                writeln!(f, "  {inst}")?;
            }
            match &block.terminator {
                Terminator::Jump(b) => writeln!(f, "  jump {b}")?,
                Terminator::Branch {
                    cond,
                    then_block,
                    else_block,
                } => writeln!(f, "  branch {cond} ? {then_block} : {else_block}")?,
                Terminator::Return(regs) => {
                    let regs: Vec<String> = regs.iter().map(Reg::to_string).collect();
                    writeln!(f, "  return {}", regs.join(", "))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// bb0: r2 = r0 + r1 ; r3 = r2 * r2 ; branch r3 ? bb1 : bb1 ; bb1: return r3
    fn two_block_cfg() -> Cfg {
        let mut cfg = Cfg::new("f");
        let bb1 = BlockId(1);
        cfg.add_block(CfgBlock {
            name: "entry".into(),
            insts: vec![
                Inst {
                    dst: Some(Reg(2)),
                    opcode: Opcode::Add,
                    args: vec![Reg(0).into(), Reg(1).into()],
                },
                Inst {
                    dst: Some(Reg(3)),
                    opcode: Opcode::Mul,
                    args: vec![Reg(2).into(), Reg(2).into()],
                },
            ],
            terminator: Terminator::Branch {
                cond: Reg(3),
                then_block: bb1,
                else_block: bb1,
            },
            exec_count: 10,
        });
        cfg.add_block(CfgBlock {
            name: "exit".into(),
            insts: vec![],
            terminator: Terminator::Return(vec![Reg(3)]),
            exec_count: 10,
        });
        cfg
    }

    #[test]
    fn liveness_queries() {
        let cfg = two_block_cfg();
        let entry = BlockId(0);
        assert_eq!(
            cfg.upward_exposed_regs(entry),
            [Reg(0), Reg(1)].into_iter().collect()
        );
        assert_eq!(
            cfg.defined_regs(entry),
            [Reg(2), Reg(3)].into_iter().collect()
        );
        assert!(cfg.live_out_regs(entry).contains(&Reg(3)));
        assert!(!cfg.live_out_regs(entry).contains(&Reg(2)));
        assert_eq!(cfg.predecessors(BlockId(1)), vec![entry]);
    }

    #[test]
    fn block_to_dfg_extracts_inputs_and_outputs() {
        let cfg = two_block_cfg();
        let dfg = cfg.block_to_dfg(BlockId(0));
        assert!(dfg.validate().is_ok());
        assert_eq!(dfg.input_count(), 2);
        assert_eq!(dfg.node_count(), 2);
        assert_eq!(dfg.output_count(), 1);
        assert_eq!(dfg.exec_count(), 10);
        assert_eq!(dfg.iter_outputs().next().unwrap().name, "r3");
    }

    #[test]
    fn redefinitions_resolve_to_last_value() {
        let mut cfg = Cfg::new("g");
        cfg.add_block(CfgBlock {
            name: "b".into(),
            insts: vec![
                Inst {
                    dst: Some(Reg(1)),
                    opcode: Opcode::Add,
                    args: vec![Reg(0).into(), 1i64.into()],
                },
                Inst {
                    dst: Some(Reg(1)),
                    opcode: Opcode::Shl,
                    args: vec![Reg(1).into(), 2i64.into()],
                },
            ],
            terminator: Terminator::Return(vec![Reg(1)]),
            exec_count: 1,
        });
        let dfg = cfg.block_to_dfg(BlockId(0));
        assert_eq!(dfg.output_count(), 1);
        // The output must reference the shift (node 1), not the add (node 0).
        assert_eq!(
            dfg.iter_outputs().next().unwrap().source,
            Operand::Node(crate::dfg::NodeId::new(1))
        );
        let display = cfg.to_string();
        assert!(display.contains("r1 = shl r1, #2"));
    }

    #[test]
    fn to_dfgs_covers_all_blocks() {
        let cfg = two_block_cfg();
        let dfgs = cfg.to_dfgs();
        assert_eq!(dfgs.len(), 2);
        assert_eq!(dfgs[1].node_count(), 0);
    }
}
