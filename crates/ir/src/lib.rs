//! # ise-ir — dataflow and control-flow IR for instruction-set extension identification
//!
//! This crate provides the program representation consumed by the identification and
//! selection algorithms of the Atasu/Pozzi/Ienne (2003) methodology:
//!
//! * [`Dfg`] — the per-basic-block dataflow DAG `G⁺(V ∪ V⁺, E ∪ E⁺)` of the paper:
//!   operation nodes `V`, plus input/output variable nodes `V⁺` modelling values read
//!   from and written to the register file.
//! * [`DfgBuilder`] — an ergonomic builder used by the workload crate to express
//!   embedded kernels (ADPCM, GSM, G.721, …) directly as dataflow graphs.
//! * [`Opcode`] / [`Node`] / [`Operand`] — the operation vocabulary, including the
//!   `SEL` selector nodes produced by if-conversion and the memory operations that are
//!   illegal inside an application-specific functional unit.
//! * [`Program`] — a set of profiled basic blocks (the unit on which the selection
//!   algorithms of the paper operate).
//! * [`topo`] — the topological orderings required by the search algorithm
//!   (consumers-before-producers, Section 6.1 of the paper).
//! * [`interp`] — a reference interpreter used to validate that cut collapsing and the
//!   transformation passes preserve program semantics.
//! * [`dot`] — Graphviz export for inspecting graphs such as the motivational example
//!   of Fig. 3.
//!
//! # Example
//!
//! ```
//! use ise_ir::{DfgBuilder, Opcode};
//!
//! // out = (a + b) * (a - b)
//! let mut b = DfgBuilder::new("sum_diff_product");
//! let a = b.input("a");
//! let bb = b.input("b");
//! let sum = b.op(Opcode::Add, &[a, bb]);
//! let diff = b.op(Opcode::Sub, &[a, bb]);
//! let prod = b.op(Opcode::Mul, &[sum, diff]);
//! b.output("out", prod);
//! let dfg = b.finish();
//! assert_eq!(dfg.node_count(), 3);
//! assert_eq!(dfg.input_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod canon;
mod cfg;
mod dfg;
pub mod dot;
mod error;
pub mod interp;
mod node;
mod opcode;
mod program;
pub mod stats;
pub mod topo;

pub use builder::DfgBuilder;
pub use cfg::{BlockId, Cfg, CfgBlock, Inst, Reg, RegOrImm, Terminator};
pub use dfg::{Dfg, InputVar, NodeId, OutputVar, PortId};
pub use error::IrError;
pub use node::{Node, Operand};
pub use opcode::{OpaqueOp, Opcode};
pub use program::{AfuSpec, Program};
