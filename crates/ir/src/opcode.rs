//! Operation vocabulary of the dataflow IR.

use std::fmt;

/// The category of an operation that is opaque to the AFU model.
///
/// Compiler front-ends (the `ise-frontend` LLVM-IR parser) encounter operations the
/// paper's dataflow vocabulary cannot absorb into an AFU — function calls, address
/// computations over unknown type layouts, stack allocations. Dropping them would
/// falsify the `IN(S)`/`OUT(S)` accounting of every cut around them, so they are
/// materialised as [`Opcode::Opaque`] nodes: present in the graph, consuming and
/// producing values like any node, but forbidden inside cuts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum OpaqueOp {
    /// A call producing a value. Operands are the call arguments.
    Call,
    /// A call producing no value (`void`). Operands are the call arguments.
    CallVoid,
    /// An address computation over a type layout the IR does not model
    /// (LLVM `getelementptr`). Operands are the base pointer and the indices.
    Gep,
    /// A stack allocation producing an address (LLVM `alloca`).
    Alloca,
    /// Any other value-producing operation outside the vocabulary.
    Unknown,
}

impl OpaqueOp {
    /// Short lower-case mnemonic of the opaque category.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpaqueOp::Call => "call",
            OpaqueOp::CallVoid => "call.void",
            OpaqueOp::Gep => "gep",
            OpaqueOp::Alloca => "alloca",
            OpaqueOp::Unknown => "opaque",
        }
    }
}

/// A primitive operation of the dataflow graph.
///
/// The vocabulary follows the MachSUIF-level operations used by the paper's experimental
/// setup: 32-bit integer arithmetic, logic, shifts, comparisons, the `SEL` selector node
/// produced by if-conversion, sub-word extensions/truncations, and memory accesses.
///
/// Memory accesses ([`Opcode::Load`], [`Opcode::Store`]) are *forbidden* inside
/// application-specific functional units (the AFU of the paper has no architecturally
/// visible state and no memory port), which is reported by [`Opcode::is_forbidden_in_afu`].
/// [`Opcode::Opaque`] nodes — calls, address computations and other operations carried
/// through from a compiler front-end — are forbidden for the same reason.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Opcode {
    /// 32-bit integer addition.
    Add,
    /// 32-bit integer subtraction.
    Sub,
    /// 32-bit integer multiplication (low half).
    Mul,
    /// 32-bit multiply returning the high half of the 64-bit product.
    MulHi,
    /// Multiply-accumulate: `a * b + c`.
    Mac,
    /// Signed integer division.
    Div,
    /// Signed integer remainder.
    Rem,
    /// Two's-complement negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT.
    Not,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Lshr,
    /// Arithmetic shift right.
    Ashr,
    /// Equality comparison, producing 0 or 1.
    Eq,
    /// Inequality comparison, producing 0 or 1.
    Ne,
    /// Signed less-than comparison, producing 0 or 1.
    Lt,
    /// Signed less-or-equal comparison, producing 0 or 1.
    Le,
    /// Signed greater-than comparison, producing 0 or 1.
    Gt,
    /// Signed greater-or-equal comparison, producing 0 or 1.
    Ge,
    /// Unsigned less-than comparison, producing 0 or 1.
    Ltu,
    /// Unsigned greater-or-equal comparison, producing 0 or 1.
    Geu,
    /// Selector node (`SEL`): `cond != 0 ? a : b`.
    ///
    /// Selectors are introduced by the if-conversion pass, exactly as in the
    /// motivational example of Fig. 3 of the paper.
    Select,
    /// Sign extension of the low 8 bits.
    SextB,
    /// Sign extension of the low 16 bits.
    SextH,
    /// Zero extension of the low 8 bits.
    ZextB,
    /// Zero extension of the low 16 bits.
    ZextH,
    /// Truncation to the low 8 bits.
    TruncB,
    /// Truncation to the low 16 bits.
    TruncH,
    /// Register-to-register move.
    Copy,
    /// Materialisation of a constant (the value is the node's immediate operand).
    Const,
    /// Memory load (word). Operand 0 is the address.
    Load,
    /// Memory store (word). Operand 0 is the address, operand 1 the stored value.
    Store,
    /// A collapsed application-specific instruction.
    ///
    /// `id` identifies the [`crate::AfuSpec`] describing the collapsed subgraph and
    /// `out` selects which of its outputs this node produces. These nodes are created
    /// by the selection algorithms when rewriting a graph after a cut has been chosen.
    Afu {
        /// Identifier of the AFU specification within the owning [`crate::Program`].
        id: u16,
        /// Index of the produced output among the AFU outputs.
        out: u16,
    },
    /// An operation carried through from a compiler front-end that the AFU model
    /// cannot absorb (calls, address computations, stack allocations).
    ///
    /// Opaque nodes take a variable number of operands, are forbidden inside cuts,
    /// and cannot be interpreted. See [`OpaqueOp`] for the categories.
    Opaque(OpaqueOp),
}

impl Opcode {
    /// Returns `true` for operations that may not be part of an AFU cut.
    ///
    /// The paper's AFU "does not contain any architecturally visible state … and cannot
    /// include memory access operations" (Section 2); already-collapsed AFU nodes are
    /// likewise excluded from further identification (Section 6.3).
    #[must_use]
    pub fn is_forbidden_in_afu(self) -> bool {
        matches!(
            self,
            Opcode::Load | Opcode::Store | Opcode::Afu { .. } | Opcode::Opaque(_)
        )
    }

    /// Returns `true` if the operation accesses memory.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// Returns `true` if the operation produces a value consumed through dataflow edges.
    ///
    /// Only [`Opcode::Store`] and `void` calls produce no value.
    #[must_use]
    pub fn has_result(self) -> bool {
        !matches!(self, Opcode::Store | Opcode::Opaque(OpaqueOp::CallVoid))
    }

    /// Returns `true` if the node has a side effect and must be preserved by dead-code
    /// elimination even when its result is unused.
    ///
    /// Calls and unknown opaque operations may touch memory or observable state, so they
    /// are conservatively treated as effectful; `gep`/`alloca` are pure address
    /// computations.
    #[must_use]
    pub fn has_side_effect(self) -> bool {
        matches!(
            self,
            Opcode::Store | Opcode::Opaque(OpaqueOp::Call | OpaqueOp::CallVoid | OpaqueOp::Unknown)
        )
    }

    /// Number of value operands expected by the operation, if fixed.
    ///
    /// [`Opcode::Afu`] and [`Opcode::Opaque`] nodes take a variable number of operands
    /// and return `None`.
    #[must_use]
    pub fn arity(self) -> Option<usize> {
        use Opcode::*;
        Some(match self {
            Const => 0,
            Neg | Abs | Not | SextB | SextH | ZextB | ZextH | TruncB | TruncH | Copy | Load => 1,
            Add | Sub | Mul | MulHi | Div | Rem | Min | Max | And | Or | Xor | Shl | Lshr
            | Ashr | Eq | Ne | Lt | Le | Gt | Ge | Ltu | Geu | Store => 2,
            Mac | Select => 3,
            Afu { .. } | Opaque(_) => return None,
        })
    }

    /// Short lower-case mnemonic used by the textual and Graphviz printers.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            MulHi => "mulhi",
            Mac => "mac",
            Div => "div",
            Rem => "rem",
            Neg => "neg",
            Abs => "abs",
            Min => "min",
            Max => "max",
            And => "and",
            Or => "or",
            Xor => "xor",
            Not => "not",
            Shl => "shl",
            Lshr => "lshr",
            Ashr => "ashr",
            Eq => "eq",
            Ne => "ne",
            Lt => "lt",
            Le => "le",
            Gt => "gt",
            Ge => "ge",
            Ltu => "ltu",
            Geu => "geu",
            Select => "sel",
            SextB => "sext.b",
            SextH => "sext.h",
            ZextB => "zext.b",
            ZextH => "zext.h",
            TruncB => "trunc.b",
            TruncH => "trunc.h",
            Copy => "copy",
            Const => "const",
            Load => "load",
            Store => "store",
            Afu { .. } => "afu",
            Opaque(op) => op.mnemonic(),
        }
    }

    /// All opcodes except [`Opcode::Afu`] and [`Opcode::Opaque`], useful for exhaustive
    /// model tables and for randomised workload generation.
    #[must_use]
    pub fn all_primitive() -> &'static [Opcode] {
        use Opcode::*;
        &[
            Add, Sub, Mul, MulHi, Mac, Div, Rem, Neg, Abs, Min, Max, And, Or, Xor, Not, Shl, Lshr,
            Ashr, Eq, Ne, Lt, Le, Gt, Ge, Ltu, Geu, Select, SextB, SextH, ZextB, ZextH, TruncB,
            TruncH, Copy, Const, Load, Store,
        ]
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Opcode::Afu { id, out } => write!(f, "afu{id}.{out}"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_ops_are_forbidden() {
        assert!(Opcode::Load.is_forbidden_in_afu());
        assert!(Opcode::Store.is_forbidden_in_afu());
        assert!(Opcode::Afu { id: 0, out: 0 }.is_forbidden_in_afu());
        assert!(!Opcode::Add.is_forbidden_in_afu());
        assert!(!Opcode::Select.is_forbidden_in_afu());
    }

    #[test]
    fn opaque_ops_are_forbidden_and_variadic() {
        for op in [
            OpaqueOp::Call,
            OpaqueOp::CallVoid,
            OpaqueOp::Gep,
            OpaqueOp::Alloca,
            OpaqueOp::Unknown,
        ] {
            assert!(Opcode::Opaque(op).is_forbidden_in_afu());
            assert_eq!(Opcode::Opaque(op).arity(), None);
            assert!(!Opcode::Opaque(op).is_memory());
        }
        assert!(!Opcode::Opaque(OpaqueOp::CallVoid).has_result());
        assert!(Opcode::Opaque(OpaqueOp::Call).has_result());
        assert!(Opcode::Opaque(OpaqueOp::Call).has_side_effect());
        assert!(Opcode::Opaque(OpaqueOp::CallVoid).has_side_effect());
        assert!(!Opcode::Opaque(OpaqueOp::Gep).has_side_effect());
        assert!(!Opcode::Opaque(OpaqueOp::Alloca).has_side_effect());
        assert_eq!(Opcode::Opaque(OpaqueOp::Gep).to_string(), "gep");
        assert_eq!(Opcode::Opaque(OpaqueOp::CallVoid).to_string(), "call.void");
    }

    #[test]
    fn store_has_no_result_and_a_side_effect() {
        assert!(!Opcode::Store.has_result());
        assert!(Opcode::Store.has_side_effect());
        assert!(Opcode::Load.has_result());
        assert!(!Opcode::Load.has_side_effect());
    }

    #[test]
    fn arities_are_consistent_with_primitives() {
        for &op in Opcode::all_primitive() {
            let arity = op.arity().expect("primitive opcodes have a fixed arity");
            assert!(arity <= 3, "{op} has unexpected arity {arity}");
        }
        assert_eq!(Opcode::Afu { id: 1, out: 0 }.arity(), None);
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(Opcode::Add.to_string(), "add");
        assert_eq!(Opcode::Select.to_string(), "sel");
        assert_eq!(Opcode::Afu { id: 3, out: 1 }.to_string(), "afu3.1");
    }

    #[test]
    fn all_primitive_contains_no_duplicates() {
        let ops = Opcode::all_primitive();
        for (i, a) in ops.iter().enumerate() {
            for b in &ops[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
