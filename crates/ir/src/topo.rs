//! Topological orderings of dataflow graphs.
//!
//! The identification algorithm of the paper (Section 6.1) requires an ordering in which
//! a node appears *after* all of its consumers ("if G contains an edge (u, v) then u
//! appears after v in the ordering"), so that, once the output-port or convexity
//! constraint is violated, no later insertion can repair it. This module provides both
//! that ordering ([`consumers_first`]) and the conventional def-before-use ordering
//! ([`producers_first`]), together with validity checks used by the property tests.

use crate::dfg::{Dfg, NodeId};
use crate::error::IrError;

/// Fallible form of [`producers_first`].
///
/// # Errors
///
/// Returns [`IrError::Cyclic`] if the graph contains a dependency cycle (possible only
/// for graphs assembled from untrusted serialised data; [`Dfg::add_node`] cannot build
/// one).
pub fn try_producers_first(dfg: &Dfg) -> Result<Vec<NodeId>, IrError> {
    let n = dfg.node_count();
    let mut remaining_preds = vec![0usize; n];
    for (id, node) in dfg.iter_nodes() {
        remaining_preds[id.index()] = node.node_operands().count();
    }
    let mut ready: Vec<NodeId> = (0..n)
        .map(NodeId::new)
        .filter(|id| remaining_preds[id.index()] == 0)
        .collect();
    // Pop from the back for O(1); order among ready nodes is irrelevant for correctness.
    let mut order = Vec::with_capacity(n);
    while let Some(id) = ready.pop() {
        order.push(id);
        for &consumer in dfg.consumers(id) {
            let slot = &mut remaining_preds[consumer.index()];
            *slot -= 1;
            if *slot == 0 {
                ready.push(consumer);
            }
        }
    }
    if order.len() != n {
        return Err(IrError::Cyclic {
            block: dfg.name().to_string(),
        });
    }
    Ok(order)
}

/// Returns a topological order in which every producer appears before its consumers.
///
/// Because [`Dfg`] is constructed in def-before-use order, the insertion order already
/// has this property; this function nevertheless recomputes an order with Kahn's
/// algorithm so that passes that permute nodes can rely on it.
///
/// # Panics
///
/// Panics if the graph is cyclic, which cannot happen for graphs built through
/// [`Dfg::add_node`]. Callers holding graphs from untrusted serialised data should run
/// [`Dfg::validate`] first (as the engine drivers do) or use [`try_producers_first`].
#[must_use]
pub fn producers_first(dfg: &Dfg) -> Vec<NodeId> {
    try_producers_first(dfg).expect("dataflow graph must be acyclic")
}

/// Fallible form of [`consumers_first`].
///
/// # Errors
///
/// Returns [`IrError::Cyclic`] if the graph contains a dependency cycle.
pub fn try_consumers_first(dfg: &Dfg) -> Result<Vec<NodeId>, IrError> {
    let mut order = try_producers_first(dfg)?;
    order.reverse();
    Ok(order)
}

/// Returns the ordering used by the single-cut search: every node appears *after* all of
/// its consumers (the ordering of Fig. 4 in the paper).
///
/// # Panics
///
/// Panics if the graph is cyclic; see [`producers_first`].
#[must_use]
pub fn consumers_first(dfg: &Dfg) -> Vec<NodeId> {
    let mut order = producers_first(dfg);
    order.reverse();
    order
}

/// Checks that `order` is a permutation of the graph's nodes in which every producer
/// appears before all of its consumers.
#[must_use]
pub fn is_producers_first(dfg: &Dfg, order: &[NodeId]) -> bool {
    if order.len() != dfg.node_count() {
        return false;
    }
    let mut position = vec![usize::MAX; dfg.node_count()];
    for (pos, id) in order.iter().enumerate() {
        if id.index() >= dfg.node_count() || position[id.index()] != usize::MAX {
            return false;
        }
        position[id.index()] = pos;
    }
    for (id, node) in dfg.iter_nodes() {
        for pred in node.node_operands() {
            if position[pred.index()] >= position[id.index()] {
                return false;
            }
        }
    }
    true
}

/// Checks that `order` is a permutation of the graph's nodes in which every consumer
/// appears before its producers (the property required by the search algorithm).
#[must_use]
pub fn is_consumers_first(dfg: &Dfg, order: &[NodeId]) -> bool {
    let mut reversed: Vec<NodeId> = order.to_vec();
    reversed.reverse();
    is_producers_first(dfg, &reversed)
}

/// Length (in nodes) of the longest dependency chain of the graph.
///
/// This is the unweighted critical path, used by the workload statistics and by tests.
#[must_use]
pub fn depth(dfg: &Dfg) -> usize {
    let order = producers_first(dfg);
    let mut level = vec![0usize; dfg.node_count()];
    let mut max_level = 0;
    for id in order {
        let node_level = dfg
            .node(id)
            .node_operands()
            .map(|p| level[p.index()] + 1)
            .max()
            .unwrap_or(1)
            .max(1);
        level[id.index()] = node_level;
        max_level = max_level.max(node_level);
    }
    max_level
}

/// Per-node ASAP (as-soon-as-possible) level, counting from 1 for nodes that only read
/// block inputs or immediates.
#[must_use]
pub fn asap_levels(dfg: &Dfg) -> Vec<usize> {
    let order = producers_first(dfg);
    let mut level = vec![0usize; dfg.node_count()];
    for id in order {
        level[id.index()] = dfg
            .node(id)
            .node_operands()
            .map(|p| level[p.index()] + 1)
            .max()
            .unwrap_or(1)
            .max(1);
    }
    level
}

/// Returns `true` if `descendant` is reachable from `ancestor` through one or more
/// dataflow edges.
#[must_use]
pub fn reaches(dfg: &Dfg, ancestor: NodeId, descendant: NodeId) -> bool {
    if ancestor == descendant {
        return false;
    }
    let mut visited = vec![false; dfg.node_count()];
    let mut stack = vec![ancestor];
    while let Some(id) = stack.pop() {
        for &consumer in dfg.consumers(id) {
            if consumer == descendant {
                return true;
            }
            if !visited[consumer.index()] {
                visited[consumer.index()] = true;
                stack.push(consumer);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    fn chain(len: usize) -> Dfg {
        let mut b = DfgBuilder::new("chain");
        let mut v = b.input("x");
        for _ in 0..len {
            v = b.add(v, b.imm(1));
        }
        b.output("out", v);
        b.finish()
    }

    #[test]
    fn producers_first_is_valid() {
        let g = chain(10);
        let order = producers_first(&g);
        assert!(is_producers_first(&g, &order));
        assert!(!is_consumers_first(&g, &order));
    }

    #[test]
    fn consumers_first_is_valid() {
        let g = chain(10);
        let order = consumers_first(&g);
        assert!(is_consumers_first(&g, &order));
        assert!(!is_producers_first(&g, &order));
    }

    #[test]
    fn depth_of_chain_equals_length() {
        assert_eq!(depth(&chain(7)), 7);
        assert_eq!(depth(&chain(1)), 1);
    }

    #[test]
    fn asap_levels_are_monotone_along_edges() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.add(x, y);
        let c = b.mul(a, x);
        let d = b.sub(c, a);
        b.output("o", d);
        let g = b.finish();
        let levels = asap_levels(&g);
        assert_eq!(levels, vec![1, 2, 3]);
    }

    #[test]
    fn reachability() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let a = b.not(x);
        let c = b.add(a, x);
        let d = b.neg(x);
        b.output("o1", c);
        b.output("o2", d);
        let g = b.finish();
        let a = a.as_node().unwrap();
        let c = c.as_node().unwrap();
        let d = d.as_node().unwrap();
        assert!(reaches(&g, a, c));
        assert!(!reaches(&g, c, a));
        assert!(!reaches(&g, a, d));
        assert!(!reaches(&g, a, a));
    }

    #[test]
    fn rejects_wrong_length_or_duplicates() {
        let g = chain(3);
        assert!(!is_producers_first(&g, &[NodeId::new(0)]));
        assert!(!is_producers_first(
            &g,
            &[NodeId::new(0), NodeId::new(0), NodeId::new(1)]
        ));
    }
}
