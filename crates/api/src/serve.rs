//! Persistent serve mode: a long-running JSONL request server with a warm,
//! process-lifetime cut-pool cache and on-disk snapshots.
//!
//! The one-shot CLI pays the full enumeration cost on every invocation even when
//! consecutive invocations analyse structurally identical code. Serve mode keeps
//! the process — and with it the [`WarmPoolCache`] of canonical Pareto fills —
//! alive across requests, so the second request that sees a known
//! `(structural key, exclusion state, budget group)` answers from memory.
//! Because canonical fills are schedule-independent, every served response is
//! **byte-identical** to what the one-shot [`BatchService`]/[`Session`] paths
//! produce, cold or warm.
//!
//! # Protocol
//!
//! One JSON object per line (JSONL), both directions. Requests:
//!
//! ```text
//! {"id": 1, "kind": "run",      "request": <IseRequest>}
//! {"id": 2, "kind": "sweep",    "request": <SweepRequest>}
//! {"id": 3, "kind": "corpus",   "request": <CorpusRequest>}
//! {"id": 4, "kind": "stats"}      cache counters (hits/misses/fills/evictions)
//! {"id": 5, "kind": "shutdown"}   drain in-flight work, snapshot, exit
//! ```
//!
//! Responses echo the `id` (verbatim, any JSON value) and carry either a
//! `"response"` — the exact payload the one-shot envelope would carry — or an
//! `"error"` string: `{"id": 1, "response": …}` / `{"id": 1, "error": "…"}`.
//! Responses to pipelined requests may arrive out of order; the `id` is the
//! correlation key.
//!
//! # Backpressure and shutdown
//!
//! Work is executed by a fixed pool of [`ServeConfig::workers`] threads fed from
//! a queue bounded at [`ServeConfig::queue_capacity`] jobs. A request that finds
//! the queue full is answered immediately with a `"server busy"` error instead
//! of buffering without bound — clients retry; memory stays flat. `stats` and
//! `shutdown` bypass the queue so they get through even under overload. On a
//! `shutdown` request (or an external stop flag, e.g. SIGTERM in the CLI) the
//! server stops accepting, drains every queued and in-flight job, snapshots the
//! cache and returns; cache statistics go to stderr, never into response bytes.
//!
//! # Persistence
//!
//! With a cache directory configured, the cache warm-starts on boot from
//! `<dir>/`[`SNAPSHOT_FILE`] and is written back on shutdown (and every
//! [`ServeConfig::snapshot_interval`], if set). Snapshots are versioned and
//! checksummed; a corrupt, truncated or mismatched file falls back to a cold
//! start rather than erroring.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ise_core::{IseError, WarmCacheConfig, WarmCacheStats, WarmPoolCache, SNAPSHOT_FILE};

use crate::batch::BatchService;
use crate::json;
use crate::request::{CorpusRequest, IseRequest, SweepRequest};
use crate::session::Session;

/// Configuration of a serve-mode instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads executing requests (at least 1).
    pub workers: usize,
    /// Upper bound on queued (accepted but not yet executing) requests; a
    /// request beyond it is answered with a `"server busy"` error immediately.
    pub queue_capacity: usize,
    /// Lock stripes of the warm cache (rounded up to a power of two).
    pub segments: usize,
    /// Byte budget of the warm cache; least-recently-used fills are evicted
    /// beyond it. `None` means unbounded.
    pub cache_bytes: Option<u64>,
    /// Directory for the on-disk cache snapshot; `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Also snapshot the cache periodically while serving, not only on shutdown.
    pub snapshot_interval: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            segments: 16,
            cache_bytes: None,
            cache_dir: None,
            snapshot_interval: None,
        }
    }
}

/// The request dispatcher of serve mode: parses one JSONL request line, routes
/// it to the one-shot execution paths, and serialises the enveloped response.
///
/// Owns the process-lifetime [`WarmPoolCache`]; `corpus` requests run through
/// [`BatchService::run_corpus_cached`] against it, so fills accumulated by one
/// request warm every later one. `run` and `sweep` requests execute exactly as
/// their one-shot counterparts. The service is [`Server`]'s brain but has no
/// I/O of its own — benchmarks call [`handle`](Self::handle) directly to
/// measure dispatch without TCP.
pub struct ServeService {
    batch: BatchService,
    cache: Arc<WarmPoolCache>,
    cache_dir: Option<PathBuf>,
    warm_loaded: Option<u64>,
    shutdown: AtomicBool,
    handled: AtomicU64,
}

impl std::fmt::Debug for ServeService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeService")
            .field("cache_dir", &self.cache_dir)
            .field("warm_loaded", &self.warm_loaded)
            .field("handled", &self.handled.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ServeService {
    /// Builds the service: a fresh warm cache, warm-started from the snapshot in
    /// [`ServeConfig::cache_dir`] when one exists and validates (an unreadable or
    /// mismatched snapshot silently cold-starts instead).
    #[must_use]
    pub fn new(config: &ServeConfig) -> ServeService {
        let cache = Arc::new(WarmPoolCache::new(WarmCacheConfig {
            segments: config.segments,
            byte_budget: config.cache_bytes,
            ..WarmCacheConfig::default()
        }));
        let warm_loaded = config
            .cache_dir
            .as_deref()
            .and_then(|dir| cache.load_snapshot(&dir.join(SNAPSHOT_FILE)));
        ServeService {
            batch: BatchService::new(),
            cache,
            cache_dir: config.cache_dir.clone(),
            warm_loaded,
            shutdown: AtomicBool::new(false),
            handled: AtomicU64::new(0),
        }
    }

    /// Entries warm-started from the snapshot at boot (`None`: cold start).
    #[must_use]
    pub fn warm_loaded(&self) -> Option<u64> {
        self.warm_loaded
    }

    /// Counters of the warm cache (hits, misses, fills, evictions, bytes).
    #[must_use]
    pub fn cache_stats(&self) -> WarmCacheStats {
        self.cache.stats()
    }

    /// Requests handled so far (including failed and `stats`/`shutdown` ones).
    #[must_use]
    pub fn handled(&self) -> u64 {
        self.handled.load(Ordering::Relaxed)
    }

    /// Whether a `shutdown` request has been handled.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Writes the cache snapshot into the configured directory (created on
    /// demand) and returns the number of persisted fills; `Ok(None)` when no
    /// cache directory is configured.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (the snapshot is written to a temporary file
    /// and renamed, so a failed write never corrupts an existing snapshot).
    pub fn save_snapshot(&self) -> std::io::Result<Option<u64>> {
        let Some(dir) = &self.cache_dir else {
            return Ok(None);
        };
        std::fs::create_dir_all(dir)?;
        self.cache.save_snapshot(&dir.join(SNAPSHOT_FILE)).map(Some)
    }

    /// Handles one request line end-to-end and returns the response line
    /// (without trailing newline). Never panics on malformed input: parse and
    /// validation failures become `"error"` envelopes.
    pub fn handle(&self, line: &str) -> String {
        self.handled.fetch_add(1, Ordering::Relaxed);
        let envelope = match json::parse(line) {
            Ok(value) => value,
            Err(error) => {
                return respond(
                    &json::Value::Null,
                    Err(IseError::Serialization(format!(
                        "cannot parse request line: {error}"
                    ))),
                )
            }
        };
        let (id, outcome) = self.dispatch(&envelope);
        respond(&id, outcome)
    }

    /// Routes one parsed request envelope; returns its echoed id and outcome.
    fn dispatch(&self, envelope: &json::Value) -> (json::Value, Result<json::Value, IseError>) {
        let json::Value::Object(fields) = envelope else {
            return (
                json::Value::Null,
                Err(IseError::InvalidRequest(
                    "a request line must be a JSON object".to_string(),
                )),
            );
        };
        let field = |name: &str| fields.iter().find(|(key, _)| key == name).map(|(_, v)| v);
        let id = field("id").cloned().unwrap_or(json::Value::Null);
        let Some(json::Value::Str(kind)) = field("kind") else {
            return (
                id,
                Err(IseError::InvalidRequest(
                    "a request line needs a string `kind` \
                     (run | sweep | corpus | stats | shutdown)"
                        .to_string(),
                )),
            );
        };
        let request = field("request");
        let outcome = match kind.as_str() {
            "run" => payload::<IseRequest>(request, "run")
                .and_then(|request| Session::execute(&request))
                .map(|response| json::to_value(&response)),
            // The sweep planner statistics and the corpus dedup/shard telemetry
            // are one-shot stderr diagnostics; the served envelope carries only
            // the deterministic response, exactly like the one-shot CLI.
            "sweep" => payload::<SweepRequest>(request, "sweep")
                .and_then(|request| Session::execute_sweep(&request))
                .map(|(response, _stats)| json::to_value(&response)),
            "corpus" => payload::<CorpusRequest>(request, "corpus")
                .and_then(|request| self.batch.run_corpus_cached(&request, &self.cache))
                .map(|(response, _stats, _shards)| json::to_value(&response)),
            "stats" => Ok(json::to_value(&self.cache.stats())),
            "shutdown" => {
                self.shutdown.store(true, Ordering::SeqCst);
                Ok(json::Value::Str("shutting down".to_string()))
            }
            other => Err(IseError::InvalidRequest(format!(
                "unknown request kind `{other}` \
                 (expected run | sweep | corpus | stats | shutdown)"
            ))),
        };
        (id, outcome)
    }
}

/// Deserialises the `request` payload of one envelope.
fn payload<T: serde::DeserializeOwned>(
    field: Option<&json::Value>,
    kind: &str,
) -> Result<T, IseError> {
    let Some(value) = field else {
        return Err(IseError::InvalidRequest(format!(
            "a `{kind}` request needs a `request` payload"
        )));
    };
    serde::json::from_value(value)
        .map_err(|error| IseError::Serialization(format!("`{kind}` payload: {error}")))
}

/// Serialises one response line: the echoed id plus either the `"response"`
/// payload (byte-identical to the one-shot envelope's) or the `"error"` string.
fn respond(id: &json::Value, outcome: Result<json::Value, IseError>) -> String {
    let (key, value) = match outcome {
        Ok(response) => ("response", response),
        Err(error) => ("error", json::Value::Str(error.to_string())),
    };
    json::to_string(&json::Value::Object(vec![
        ("id".to_string(), id.clone()),
        (key.to_string(), value),
    ]))
}

/// The queue-full error response for one raw request line (best-effort id echo).
fn busy_response(line: &str) -> String {
    let id = match json::parse(line) {
        Ok(json::Value::Object(fields)) => fields
            .iter()
            .find(|(key, _)| key == "id")
            .map(|(_, value)| value.clone())
            .unwrap_or(json::Value::Null),
        _ => json::Value::Null,
    };
    respond(
        &id,
        Err(IseError::InvalidRequest(
            "server busy: the request queue is full, retry later".to_string(),
        )),
    )
}

/// Returns the request kind of a raw line, when it parses to an object.
fn line_kind(line: &str) -> Option<String> {
    match json::parse(line) {
        Ok(json::Value::Object(fields)) => {
            fields
                .iter()
                .find_map(|(key, value)| match (key.as_str(), value) {
                    ("kind", json::Value::Str(kind)) => Some(kind.clone()),
                    _ => None,
                })
        }
        _ => None,
    }
}

/// One accepted request waiting for a worker: the raw line plus the (shared)
/// write half of the connection it arrived on.
struct Job {
    line: String,
    peer: Arc<Mutex<TcpStream>>,
}

/// The bounded job queue between connection readers and the worker pool.
struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> JobQueue {
        JobQueue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues unless the queue is at capacity; a rejected job comes back so
    /// the caller can answer it with the backpressure error.
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut jobs = self.jobs.lock().expect("job queue poisoned");
        if jobs.len() >= self.capacity {
            return Err(job);
        }
        jobs.push_back(job);
        drop(jobs);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once `halt` is set *and* the queue is
    /// empty, so pending work always drains before the workers exit.
    fn pop(&self, halt: &AtomicBool) -> Option<Job> {
        let mut jobs = self.jobs.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if halt.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(jobs, Duration::from_millis(50))
                .expect("job queue poisoned");
            jobs = guard;
        }
    }
}

/// Writes one response line to a connection (errors are ignored: a client that
/// hung up forfeits its response, the server keeps serving).
fn write_line(peer: &Mutex<TcpStream>, response: &str) {
    let mut stream = peer.lock().expect("connection writer poisoned");
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

/// The TCP front of serve mode: accept loop, per-connection readers, the
/// bounded queue and the fixed worker pool around one [`ServeService`].
pub struct Server {
    listener: TcpListener,
    service: Arc<ServeService>,
    config: ServeConfig,
}

impl Server {
    /// Binds the listening socket (use port 0 for an ephemeral port) and builds
    /// the service, warm-starting its cache when a snapshot is available.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind, non-blocking mode).
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let service = Arc::new(ServeService::new(&config));
        Ok(Server {
            listener,
            service,
            config,
        })
    }

    /// The bound address (the actual port when 0 was requested).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The dispatcher behind this server (cache statistics, snapshots).
    #[must_use]
    pub fn service(&self) -> &Arc<ServeService> {
        &self.service
    }

    /// Serves until `stop` is set externally (e.g. by a signal handler) or a
    /// `shutdown` request arrives, then drains queued and in-flight work,
    /// snapshots the cache and prints its counters to stderr.
    ///
    /// # Errors
    ///
    /// Returns the first fatal `accept` error; per-connection I/O errors only
    /// end that connection.
    pub fn run(&self, stop: &AtomicBool) -> std::io::Result<()> {
        let queue = Arc::new(JobQueue::new(self.config.queue_capacity));
        let halt = Arc::new(AtomicBool::new(false));
        let mut accept_error: Option<std::io::Error> = None;
        let mut last_snapshot = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                let queue = Arc::clone(&queue);
                let halt = Arc::clone(&halt);
                let service = Arc::clone(&self.service);
                scope.spawn(move || {
                    while let Some(job) = queue.pop(&halt) {
                        write_line(&job.peer, &service.handle(&job.line));
                    }
                });
            }
            loop {
                if stop.load(Ordering::SeqCst) || self.service.shutdown_requested() {
                    break;
                }
                if let Some(interval) = self.config.snapshot_interval {
                    if last_snapshot.elapsed() >= interval {
                        if let Err(error) = self.service.save_snapshot() {
                            eprintln!("serve: periodic snapshot failed: {error}");
                        }
                        last_snapshot = Instant::now();
                    }
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let queue = Arc::clone(&queue);
                        let halt = Arc::clone(&halt);
                        let service = Arc::clone(&self.service);
                        scope.spawn(move || read_connection(stream, &service, &queue, &halt));
                    }
                    Err(error) if error.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(error) => {
                        accept_error = Some(error);
                        break;
                    }
                }
            }
            halt.store(true, Ordering::SeqCst);
        });
        match self.service.save_snapshot() {
            Ok(Some(entries)) => eprintln!("serve: snapshot saved ({entries} fills)"),
            Ok(None) => {}
            Err(error) => eprintln!("serve: shutdown snapshot failed: {error}"),
        }
        eprintln!(
            "serve: cache stats {}",
            crate::to_json(&self.service.cache_stats())
        );
        match accept_error {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }
}

/// Reads request lines off one connection until EOF, a read error, or server
/// halt. `stats`/`shutdown` are answered inline (they must get through even
/// when the queue is full); everything else takes a bounded queue slot or is
/// answered with the backpressure error.
fn read_connection(stream: TcpStream, service: &ServeService, queue: &JobQueue, halt: &AtomicBool) {
    // The 50ms read timeout is the poll granularity for noticing `halt` while a
    // client keeps the connection open without sending.
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let peer = Arc::new(Mutex::new(writer));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if halt.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let text = line.trim();
                if !text.is_empty() {
                    match line_kind(text).as_deref() {
                        Some("stats" | "shutdown") => write_line(&peer, &service.handle(text)),
                        _ => {
                            let job = Job {
                                line: text.to_string(),
                                peer: Arc::clone(&peer),
                            };
                            if let Err(job) = queue.try_push(job) {
                                write_line(&job.peer, &busy_response(&job.line));
                            }
                        }
                    }
                }
                line.clear();
            }
            // A timeout may leave a partial line accumulated in `line`; keep it
            // and let the next iteration complete it.
            Err(error)
                if error.kind() == ErrorKind::WouldBlock || error.kind() == ErrorKind::TimedOut => {
            }
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Algorithm, ProgramSource};

    fn run_line(id: u64) -> String {
        let request = IseRequest::new(
            Algorithm::SingleCut,
            ProgramSource::Workload("adpcmdecode".into()),
        );
        json::to_string(&json::Value::Object(vec![
            ("id".to_string(), json::to_value(&id)),
            ("kind".to_string(), json::Value::Str("run".to_string())),
            ("request".to_string(), json::to_value(&request)),
        ]))
    }

    #[test]
    fn handle_matches_the_one_shot_envelope_byte_for_byte() {
        let service = ServeService::new(&ServeConfig::default());
        let served = service.handle(&run_line(7));
        let request = IseRequest::new(
            Algorithm::SingleCut,
            ProgramSource::Workload("adpcmdecode".into()),
        );
        let oneshot = Session::execute(&request).expect("bundled workload");
        let expected = json::to_string(&json::Value::Object(vec![
            ("id".to_string(), json::to_value(&7u64)),
            ("response".to_string(), json::to_value(&oneshot)),
        ]));
        assert_eq!(served, expected);
    }

    #[test]
    fn malformed_lines_become_error_envelopes() {
        let service = ServeService::new(&ServeConfig::default());
        for line in [
            "not json",
            "[1,2]",
            "{\"id\":1}",
            "{\"id\":1,\"kind\":\"nope\"}",
            "{\"id\":1,\"kind\":\"run\"}",
            "{\"id\":1,\"kind\":\"run\",\"request\":{\"bad\":true}}",
        ] {
            let response = service.handle(line);
            assert!(response.contains("\"error\""), "{line} -> {response}");
        }
    }

    #[test]
    fn stats_and_shutdown_requests_are_served_inline() {
        let service = ServeService::new(&ServeConfig::default());
        let stats = service.handle("{\"id\":\"s\",\"kind\":\"stats\"}");
        assert!(stats.contains("\"hits\""), "{stats}");
        assert!(!service.shutdown_requested());
        let bye = service.handle("{\"id\":\"q\",\"kind\":\"shutdown\"}");
        assert!(bye.contains("shutting down"), "{bye}");
        assert!(service.shutdown_requested());
    }

    #[test]
    fn corpus_requests_warm_the_cache_across_handle_calls() {
        let request = CorpusRequest::new(vec![
            ProgramSource::Workload("adpcmdecode".into()),
            ProgramSource::Workload("adpcmdecode".into()),
        ]);
        let line = json::to_string(&json::Value::Object(vec![
            ("id".to_string(), json::to_value(&1u64)),
            ("kind".to_string(), json::Value::Str("corpus".to_string())),
            ("request".to_string(), json::to_value(&request)),
        ]));
        let service = ServeService::new(&ServeConfig::default());
        let cold = service.handle(&line);
        let fills_after_cold = service.cache_stats().fills;
        assert!(fills_after_cold > 0);
        let warm = service.handle(&line);
        assert_eq!(cold, warm, "warm answers must be byte-identical");
        assert_eq!(
            service.cache_stats().fills,
            fills_after_cold,
            "the warm request must not enumerate again"
        );
    }
}
