//! # ise-api — the fallible, serialisable front-end of the ISE stack
//!
//! The lower layers (`ise-ir`, `ise-core`, `ise-baselines`) expose the paper's
//! algorithms as a library of precise building blocks. This crate is the *service
//! surface* on top of them: a typed job API in which every request is data, every
//! failure is an [`IseError`] value instead of a panic, and every payload crosses a
//! process boundary as JSON.
//!
//! * [`SessionBuilder`] → [`Session`] — configure an identification job once
//!   (algorithm by [`Algorithm`] enum or by registry name, [`Constraints`], cost
//!   model, pass pipeline, [`DriverOptions`], exploration budget), then run it
//!   against any number of programs: `session.run(&program)` returns an
//!   [`IseResponse`] with the [`SelectionResult`] and its [`SpeedupReport`];
//! * [`IseRequest`]/[`IseResponse`] — the serialisable job description and result;
//!   [`Session::execute`] runs one request end-to-end (resolving its
//!   [`ProgramSource`]);
//! * [`BatchService`] — fans a slice of requests out across `rayon` workers and
//!   returns responses in request order, deterministically (each response is
//!   byte-identical to what a sequential [`Session::run`] produces);
//! * [`ServeService`]/[`Server`] — the persistent serve mode: a long-running JSONL
//!   TCP server whose [`WarmPoolCache`] of canonical Pareto fills outlives
//!   individual requests (and, via disk snapshots, the process), answering repeat
//!   structures without re-enumeration while staying byte-identical to the
//!   one-shot paths;
//! * [`json`] — the serialisation entry points (`to_string`, `to_string_pretty`,
//!   `from_str`) shared by the `ise-cli` binary and in-process callers.
//!
//! # Example
//!
//! ```
//! use ise_api::{Algorithm, SessionBuilder};
//! use ise_core::Constraints;
//!
//! let session = SessionBuilder::new()
//!     .algorithm(Algorithm::SingleCut)
//!     .constraints(Constraints::new(4, 2))
//!     .max_instructions(4)
//!     .build()?;
//! let response = session.run(&ise_workloads::adpcm::decode_program())?;
//! assert!(response.report.speedup > 1.0);
//! # Ok::<(), ise_api::IseError>(())
//! ```
//!
//! [`Constraints`]: ise_core::Constraints
//! [`SelectionResult`]: ise_core::SelectionResult
//! [`SpeedupReport`]: ise_hw::speedup::SpeedupReport
//! [`DriverOptions`]: ise_core::DriverOptions

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod request;
mod serve;
mod session;

pub use batch::{BaselineRow, BatchService, CorpusBaselines};
pub use ise_core::{
    CorpusStats, IseError, SweepStats, WarmCacheConfig, WarmCacheStats, WarmPoolCache,
    SNAPSHOT_FILE,
};
pub use request::{
    Algorithm, CorpusProgramOutcome, CorpusRequest, CorpusResponse, IseRequest, IseResponse, Pass,
    ProgramSource, SweepPairOutcome, SweepRequest, SweepResponse,
};
pub use serve::{ServeConfig, ServeService, Server};
pub use session::{Session, SessionBuilder};

use serde::{DeserializeOwned, Serialize};

/// JSON serialisation entry points shared by the CLI and in-process callers.
///
/// Re-exported from the workspace serde shim; output is deterministic (object keys
/// keep declaration order), so serialising the same data twice is byte-identical.
pub mod json {
    pub use serde::json::{parse, to_string, to_string_pretty, to_value};
    pub use serde::Value;
}

/// Serialises any API payload (requests, responses, programs, selections, reports)
/// as compact JSON.
#[must_use]
pub fn to_json<T: Serialize + ?Sized>(value: &T) -> String {
    serde::json::to_string(value)
}

/// Serialises any API payload as human-readable, indented JSON.
#[must_use]
pub fn to_json_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    serde::json::to_string_pretty(value)
}

/// Parses any API payload from JSON.
///
/// # Errors
///
/// Returns [`IseError::Serialization`] when the text is not valid JSON or does not
/// match the target type.
pub fn from_json<T: DeserializeOwned>(text: &str) -> Result<T, IseError> {
    serde::json::from_str(text).map_err(|e| IseError::Serialization(e.to_string()))
}

/// Parses a [`Program`](ise_ir::Program) from JSON and validates it, so the
/// result is safe to hand to any identification algorithm. (The derived
/// use-lists never come off the wire: graph deserialisation rebuilds them from
/// the operands.)
///
/// # Errors
///
/// Returns [`IseError::Serialization`] for malformed JSON and
/// [`IseError::InvalidProgram`] for a structurally invalid graph (bad arity,
/// dangling or forward references, cycles).
pub fn program_from_json(text: &str) -> Result<ise_ir::Program, IseError> {
    let program: ise_ir::Program = from_json(text)?;
    program.validate()?;
    Ok(program)
}

/// The registry names of all bundled identification algorithms, in registration
/// order (the six names [`Algorithm`] also enumerates).
#[must_use]
pub fn algorithm_names() -> Vec<&'static str> {
    ise_baselines::full_registry().names()
}
