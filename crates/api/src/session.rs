//! Sessions: a configured identification job, built once and run many times.

use std::sync::Arc;

use ise_baselines::full_registry;
use ise_core::engine::{select_program, Identifier};
use ise_core::{Constraints, DriverOptions, IdentifierConfig, IseError, SweepStats};
use ise_hw::{CostModel, DefaultCostModel, SoftwareLatencyModel};
use ise_ir::Program;

use crate::request::{
    Algorithm, IseRequest, IseResponse, Pass, SweepPairOutcome, SweepRequest, SweepResponse,
};

/// Builder for a [`Session`].
///
/// Defaults: the exact `"single-cut"` algorithm, `Nin=4`/`Nout=2` constraints, the
/// [`DefaultCostModel`], no passes, unbounded instruction count and a parallel
/// per-block fan-out.
#[derive(Clone)]
pub struct SessionBuilder {
    algorithm: String,
    constraints: Constraints,
    config: IdentifierConfig,
    options: DriverOptions,
    passes: Vec<Pass>,
    cost_model: Arc<dyn CostModel + Send + Sync>,
    software_model: SoftwareLatencyModel,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            algorithm: Algorithm::SingleCut.name().to_string(),
            constraints: Constraints::default(),
            config: IdentifierConfig::default(),
            options: DriverOptions::default(),
            passes: Vec::new(),
            cost_model: Arc::new(DefaultCostModel::new()),
            software_model: SoftwareLatencyModel::new(),
        }
    }
}

impl SessionBuilder {
    /// Creates a builder with the default configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder carrying all the knobs of a request (everything except
    /// its program source).
    #[must_use]
    pub fn from_request(request: &IseRequest) -> Self {
        SessionBuilder::new()
            .algorithm_name(request.algorithm.clone())
            .constraints(request.constraints)
            .config(request.config)
            .options(request.options)
            .passes(request.passes.clone())
    }

    /// Selects one of the bundled algorithms.
    #[must_use]
    pub fn algorithm(self, algorithm: Algorithm) -> Self {
        self.algorithm_name(algorithm.name())
    }

    /// Selects an algorithm by registry name (resolved at [`build`](Self::build)
    /// time, so custom registrations stay addressable).
    #[must_use]
    pub fn algorithm_name(mut self, name: impl Into<String>) -> Self {
        self.algorithm = name.into();
        self
    }

    /// Sets the microarchitectural constraints.
    #[must_use]
    pub fn constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the algorithm construction parameters wholesale.
    #[must_use]
    pub fn config(mut self, config: IdentifierConfig) -> Self {
        self.config = config;
        self
    }

    /// Limits the number of cuts an exact search may consider per invocation.
    #[must_use]
    pub fn exploration_budget(mut self, budget: u64) -> Self {
        self.config.exploration_budget = Some(budget);
        self
    }

    /// Sets the number of simultaneous cuts for the `"multicut"` algorithm.
    #[must_use]
    pub fn multicut_slots(mut self, slots: usize) -> Self {
        self.config.multicut_slots = slots;
        self
    }

    /// Sets the program-driver options wholesale.
    #[must_use]
    pub fn options(mut self, options: DriverOptions) -> Self {
        self.options = options;
        self
    }

    /// Bounds the number of selected instructions (`Ninstr`).
    #[must_use]
    pub fn max_instructions(mut self, max_instructions: usize) -> Self {
        self.options.max_instructions = max_instructions;
        self
    }

    /// Forces the sequential per-block fan-out (the default is parallel).
    #[must_use]
    pub fn sequential(mut self) -> Self {
        self.options.parallel = false;
        self
    }

    /// Enables intra-block subtree parallelism: the top `levels` levels of each
    /// block's decision tree fan out as parallel tasks (deterministic; results are
    /// byte-identical to the sequential search). See
    /// [`DriverOptions::intra_block_levels`] for when this pays off.
    #[must_use]
    pub fn intra_block_levels(mut self, levels: usize) -> Self {
        self.options.intra_block_levels = levels;
        self
    }

    /// Appends one pass to the pre-identification pipeline.
    #[must_use]
    pub fn pass(mut self, pass: Pass) -> Self {
        self.passes.push(pass);
        self
    }

    /// Replaces the whole pass pipeline.
    #[must_use]
    pub fn passes(mut self, passes: Vec<Pass>) -> Self {
        self.passes = passes;
        self
    }

    /// Replaces the cost model used to score candidate cuts.
    #[must_use]
    pub fn cost_model(mut self, model: impl CostModel + Send + 'static) -> Self {
        self.cost_model = Arc::new(model);
        self
    }

    /// Replaces the software latency model used for the speed-up baseline.
    #[must_use]
    pub fn software_model(mut self, model: SoftwareLatencyModel) -> Self {
        self.software_model = model;
        self
    }

    /// Validates the configuration and instantiates the session.
    ///
    /// # Errors
    ///
    /// Returns [`IseError::UnknownAlgorithm`] when the algorithm name does not
    /// resolve (the message lists the registered names) and
    /// [`IseError::InvalidRequest`] when the constraints or algorithm parameters
    /// are out of domain.
    pub fn build(self) -> Result<Session, IseError> {
        if self.constraints.max_inputs == 0 || self.constraints.max_outputs == 0 {
            return Err(IseError::InvalidRequest(format!(
                "constraints must allow at least one read and one write port, got {}",
                self.constraints
            )));
        }
        if let Some(area) = self.constraints.max_area {
            if !area.is_finite() || area < 0.0 {
                return Err(IseError::InvalidRequest(format!(
                    "max_area must be finite and non-negative, got {area}"
                )));
            }
        }
        let identifier = full_registry().create_configured(&self.algorithm, &self.config)?;
        Ok(Session {
            algorithm: identifier.name().to_string(),
            identifier,
            constraints: self.constraints,
            config: self.config,
            options: self.options,
            passes: self.passes,
            cost_model: self.cost_model,
            software_model: self.software_model,
        })
    }
}

/// A configured identification job.
///
/// A session owns its instantiated [`Identifier`] and is immutable once built, so
/// it can be shared across threads and run against any number of programs; every
/// run is deterministic for a given input.
pub struct Session {
    algorithm: String,
    identifier: Box<dyn Identifier>,
    constraints: Constraints,
    config: IdentifierConfig,
    options: DriverOptions,
    passes: Vec<Pass>,
    cost_model: Arc<dyn CostModel + Send + Sync>,
    software_model: SoftwareLatencyModel,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("algorithm", &self.algorithm)
            .field("constraints", &self.constraints)
            .field("options", &self.options)
            .field("passes", &self.passes)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// The registry name of the algorithm this session runs.
    #[must_use]
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// The constraints this session runs under.
    #[must_use]
    pub fn constraints(&self) -> Constraints {
        self.constraints
    }

    /// Runs the session against one program.
    ///
    /// The program is validated first, so a malformed graph (including one
    /// assembled from untrusted serialised data) degrades into an error response
    /// instead of a panic. The pass pipeline, if any, runs on a private copy — the
    /// caller's program is never mutated.
    ///
    /// # Errors
    ///
    /// Returns [`IseError::InvalidProgram`] when the program fails structural
    /// validation (before or after the pass pipeline).
    pub fn run(&self, program: &Program) -> Result<IseResponse, IseError> {
        program.validate()?;
        let transformed;
        let prepared: &Program = if self.passes.is_empty() {
            program
        } else {
            transformed = self.apply_passes(program)?;
            &transformed
        };
        let selection = select_program(
            prepared,
            self.identifier.as_ref(),
            self.constraints,
            self.cost_model.as_ref(),
            self.options,
        );
        let report = selection.speedup_report(prepared, &self.software_model);
        Ok(IseResponse {
            program: prepared.name().to_string(),
            algorithm: self.algorithm.clone(),
            constraints: self.constraints,
            selection,
            report,
        })
    }

    /// Executes one self-contained request end-to-end: builds the session the
    /// request describes, resolves its program source, and runs it.
    ///
    /// # Errors
    ///
    /// Propagates every validation error a request can carry: unknown algorithm or
    /// workload, out-of-domain parameters, or an invalid inline program.
    pub fn execute(request: &IseRequest) -> Result<IseResponse, IseError> {
        let session = SessionBuilder::from_request(request).build()?;
        let program = request.program.resolve()?;
        session.run(&program)
    }

    /// Runs the session against one program under a whole sweep of constraint
    /// pairs, answering from a memoised [cut pool](ise_core::pool) where the
    /// session's options allow it ([`DriverOptions::cut_pool`], on by default, and
    /// the `"single-cut"` algorithm) and per-pair directly otherwise.
    ///
    /// Every [`SweepPairOutcome`] is **byte-identical** (once serialised) to what
    /// [`run`](Self::run) would produce for a session with that single pair — the
    /// pool only removes redundant enumeration work, never changes results. The
    /// second return value reports how much work was saved.
    ///
    /// # Errors
    ///
    /// Returns [`IseError::InvalidProgram`] when the program fails structural
    /// validation and [`IseError::InvalidRequest`] when `pairs` is empty or a pair
    /// is out of domain.
    pub fn sweep(
        &self,
        program: &Program,
        pairs: &[Constraints],
    ) -> Result<(SweepResponse, SweepStats), IseError> {
        if pairs.is_empty() {
            return Err(IseError::InvalidRequest(
                "a sweep needs at least one constraint pair".to_string(),
            ));
        }
        if let Some(bad) = pairs
            .iter()
            .find(|p| p.max_inputs == 0 || p.max_outputs == 0)
        {
            return Err(IseError::InvalidRequest(format!(
                "sweep pairs must allow at least one read and one write port, got {bad}"
            )));
        }
        program.validate()?;
        let transformed;
        let prepared: &Program = if self.passes.is_empty() {
            program
        } else {
            transformed = self.apply_passes(program)?;
            &transformed
        };
        let (selections, stats) = ise_core::sweep_program(
            prepared,
            self.identifier.as_ref(),
            self.config.exploration_budget,
            pairs,
            self.cost_model.as_ref(),
            self.options,
        );
        let outcomes = pairs
            .iter()
            .zip(selections)
            .map(|(&constraints, selection)| {
                let report = selection.speedup_report(prepared, &self.software_model);
                SweepPairOutcome {
                    constraints,
                    selection,
                    report,
                }
            })
            .collect();
        Ok((
            SweepResponse {
                program: prepared.name().to_string(),
                algorithm: self.algorithm.clone(),
                pairs: outcomes,
            },
            stats,
        ))
    }

    /// Executes one self-contained sweep request end-to-end (see [`sweep`](Self::sweep)).
    ///
    /// # Errors
    ///
    /// Propagates every validation error the base request or the pair list can carry.
    pub fn execute_sweep(request: &SweepRequest) -> Result<(SweepResponse, SweepStats), IseError> {
        let session = SessionBuilder::from_request(&request.request).build()?;
        let program = request.request.program.resolve()?;
        session.sweep(&program, &request.sweep)
    }

    /// Applies the pass pipeline to a private copy of `program`.
    fn apply_passes(&self, program: &Program) -> Result<Program, IseError> {
        let mut transformed = program.clone();
        for pass in &self.passes {
            for block in transformed.blocks_mut() {
                match pass {
                    Pass::ConstFold => {
                        ise_passes::fold_constants(block);
                    }
                    Pass::Dce => {
                        ise_passes::eliminate_dead_code(block);
                    }
                }
            }
        }
        transformed.validate()?;
        Ok(transformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ProgramSource;
    use ise_ir::DfgBuilder;

    fn mac_program() -> Program {
        let mut p = Program::new("mac");
        let mut b = DfgBuilder::new("bb0");
        b.exec_count(500);
        let x = b.input("x");
        let y = b.input("y");
        let acc = b.input("acc");
        let prod = b.mul(x, y);
        let sum = b.add(prod, acc);
        let scaled = b.shl(sum, b.imm(1));
        b.output("acc", scaled);
        p.add_block(b.finish());
        p
    }

    #[test]
    fn sessions_run_and_report_speedup() {
        let session = SessionBuilder::new()
            .algorithm(Algorithm::SingleCut)
            .constraints(Constraints::new(4, 2))
            .max_instructions(4)
            .build()
            .expect("valid configuration");
        let response = session.run(&mac_program()).expect("valid program");
        assert_eq!(response.algorithm, "single-cut");
        assert_eq!(response.program, "mac");
        assert!(!response.selection.is_empty());
        assert!(response.report.speedup > 1.0);
    }

    #[test]
    fn unknown_algorithms_fail_at_build_time() {
        let err = SessionBuilder::new()
            .algorithm_name("made-up")
            .build()
            .unwrap_err();
        assert!(matches!(err, IseError::UnknownAlgorithm { .. }), "{err}");
    }

    #[test]
    fn out_of_domain_parameters_fail_at_build_time() {
        let err = SessionBuilder::new().multicut_slots(0).build().unwrap_err();
        assert!(matches!(err, IseError::InvalidRequest(_)), "{err}");

        let bad = Constraints {
            max_inputs: 0,
            max_outputs: 1,
            max_area: None,
            max_nodes: None,
        };
        let err = SessionBuilder::new().constraints(bad).build().unwrap_err();
        assert!(matches!(err, IseError::InvalidRequest(_)), "{err}");
    }

    #[test]
    fn passes_run_on_a_private_copy() {
        let mut p = Program::new("foldable");
        let mut b = DfgBuilder::new("bb0");
        b.exec_count(10);
        let x = b.input("x");
        let c = b.add(b.imm(2), b.imm(3));
        let s = b.mul(x, c);
        let t = b.add(s, x);
        b.output("o", t);
        p.add_block(b.finish());
        let before = p.clone();

        let session = SessionBuilder::new()
            .pass(Pass::ConstFold)
            .pass(Pass::Dce)
            .build()
            .expect("valid configuration");
        let response = session.run(&p).expect("valid program");
        assert_eq!(p, before, "caller's program must not be mutated");
        assert!(response.report.speedup >= 1.0);
    }

    #[test]
    fn sweep_pairs_match_single_pair_sessions_byte_for_byte() {
        let program = mac_program();
        let pairs = vec![
            Constraints::new(2, 1),
            Constraints::new(4, 2),
            Constraints::new(8, 4),
        ];
        let session = SessionBuilder::new()
            .algorithm(Algorithm::SingleCut)
            .max_instructions(4)
            .build()
            .expect("valid configuration");
        let (sweep, stats) = session.sweep(&program, &pairs).expect("valid sweep");
        assert_eq!(sweep.pairs.len(), pairs.len());
        assert_eq!(sweep.algorithm, "single-cut");
        for (pair, outcome) in pairs.iter().zip(&sweep.pairs) {
            let single = SessionBuilder::new()
                .algorithm(Algorithm::SingleCut)
                .constraints(*pair)
                .max_instructions(4)
                .build()
                .expect("valid configuration")
                .run(&program)
                .expect("valid program");
            assert_eq!(
                crate::to_json(&outcome.selection),
                crate::to_json(&single.selection),
                "{pair}"
            );
            assert_eq!(
                crate::to_json(&outcome.report),
                crate::to_json(&single.report)
            );
        }
        // One block, three pairs: the pool must have saved enumerations.
        assert!(stats.physical_identifier_calls() < stats.logical_identifier_calls);
    }

    #[test]
    fn sweep_rejects_empty_and_out_of_domain_pair_lists() {
        let session = SessionBuilder::new().build().expect("valid configuration");
        let err = session.sweep(&mac_program(), &[]).unwrap_err();
        assert!(matches!(err, IseError::InvalidRequest(_)), "{err}");
        let bad = Constraints {
            max_inputs: 0,
            max_outputs: 1,
            max_area: None,
            max_nodes: None,
        };
        let err = session.sweep(&mac_program(), &[bad]).unwrap_err();
        assert!(matches!(err, IseError::InvalidRequest(_)), "{err}");
    }

    #[test]
    fn execute_resolves_workload_requests() {
        let request = IseRequest::new(
            Algorithm::MaxMiso,
            ProgramSource::Workload("adpcmdecode".into()),
        );
        let response = Session::execute(&request).expect("bundled workload");
        assert_eq!(response.program, "adpcmdecode");
        assert_eq!(response.algorithm, "maxmiso");
    }
}
