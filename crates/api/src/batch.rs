//! The batch front-end: fan a slice of requests out across `rayon` workers.

use rayon::prelude::*;

use ise_core::IseError;

use crate::request::{IseRequest, IseResponse, SweepRequest, SweepResponse};
use crate::session::Session;

/// Executes many [`IseRequest`]s concurrently with deterministic, ordered results.
///
/// Each request is independent — its own program, algorithm and knobs — so the
/// service fans them out across the `rayon` thread pool and collects the outcomes
/// *in request order*. Every outcome is byte-identical (once serialised) to what a
/// sequential [`Session::execute`] of the same request produces: parallelism only
/// trades wall-clock for cores, never determinism. A failing request yields its
/// [`IseError`] in place; it never aborts the rest of the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchService {
    parallel: bool,
}

impl Default for BatchService {
    fn default() -> Self {
        BatchService::new()
    }
}

impl BatchService {
    /// Creates the service with the parallel fan-out enabled.
    #[must_use]
    pub fn new() -> Self {
        BatchService { parallel: true }
    }

    /// Chooses between the parallel and the sequential fan-out (the results are
    /// identical either way; sequential exists for debugging and benchmarking).
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Executes every request and returns one outcome per request, in order.
    #[must_use]
    pub fn run(&self, requests: &[IseRequest]) -> Vec<Result<IseResponse, IseError>> {
        if self.parallel && requests.len() > 1 {
            requests.par_iter().map(Session::execute).collect()
        } else {
            requests.iter().map(Session::execute).collect()
        }
    }

    /// Executes every sweep request and returns one outcome per request, in order.
    ///
    /// Each sweep is answered from its own memoised cut pool (see
    /// [`Session::sweep`]); the per-request responses are byte-identical to
    /// sequential [`Session::execute_sweep`] runs, and the accompanying
    /// [`SweepStats`](ise_core::SweepStats) report the enumeration work each pool
    /// saved.
    #[must_use]
    pub fn run_sweeps(
        &self,
        requests: &[SweepRequest],
    ) -> Vec<Result<(SweepResponse, ise_core::SweepStats), IseError>> {
        if self.parallel && requests.len() > 1 {
            requests.par_iter().map(Session::execute_sweep).collect()
        } else {
            requests.iter().map(Session::execute_sweep).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Algorithm, ProgramSource};

    fn sample_requests() -> Vec<IseRequest> {
        let mut requests = Vec::new();
        for workload in ["adpcmdecode", "gsm"] {
            for algorithm in [Algorithm::SingleCut, Algorithm::MaxMiso] {
                requests.push(IseRequest::new(
                    algorithm,
                    ProgramSource::Workload(workload.into()),
                ));
            }
        }
        // One failing request in the middle of the batch.
        requests.insert(
            2,
            IseRequest::named("no-such", ProgramSource::Workload("gsm".into())),
        );
        requests
    }

    #[test]
    fn batches_are_ordered_and_error_isolating() {
        let requests = sample_requests();
        let outcomes = BatchService::new().run(&requests);
        assert_eq!(outcomes.len(), requests.len());
        assert!(outcomes[2].is_err(), "the bad request fails in place");
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == 2 {
                continue;
            }
            let response = outcome.as_ref().expect("good requests succeed");
            assert_eq!(response.program, requests[i].program.name());
            assert_eq!(response.algorithm, requests[i].algorithm);
        }
    }

    #[test]
    fn parallel_and_sequential_batches_are_byte_identical() {
        let requests = sample_requests();
        let parallel = BatchService::new().run(&requests);
        let sequential = BatchService::new().with_parallel(false).run(&requests);
        for (p, s) in parallel.iter().zip(&sequential) {
            match (p, s) {
                (Ok(p), Ok(s)) => assert_eq!(crate::to_json(p), crate::to_json(s)),
                (Err(p), Err(s)) => assert_eq!(p, s),
                other => panic!("parallel/sequential outcome mismatch: {other:?}"),
            }
        }
    }
}
