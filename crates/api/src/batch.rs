//! The batch front-end: fan a slice of requests out across `rayon` workers.

use std::sync::Arc;

use rayon::prelude::*;
use rayon::ShardProgress;

use ise_core::{
    CorpusOptions, CorpusStats, IseError, TemplateBudget, WarmCacheConfig, WarmPoolCache,
};
use ise_hw::SoftwareLatencyModel;

use crate::request::{
    CorpusProgramOutcome, CorpusRequest, CorpusResponse, IseRequest, IseResponse, ProgramSource,
    SweepRequest, SweepResponse,
};
use crate::session::Session;

/// Executes many [`IseRequest`]s concurrently with deterministic, ordered results.
///
/// Each request is independent — its own program, algorithm and knobs — so the
/// service fans them out across the `rayon` thread pool and collects the outcomes
/// *in request order*. Every outcome is byte-identical (once serialised) to what a
/// sequential [`Session::execute`] of the same request produces: parallelism only
/// trades wall-clock for cores, never determinism. A failing request yields its
/// [`IseError`] in place; it never aborts the rest of the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchService {
    parallel: bool,
}

impl Default for BatchService {
    fn default() -> Self {
        BatchService::new()
    }
}

impl BatchService {
    /// Creates the service with the parallel fan-out enabled.
    #[must_use]
    pub fn new() -> Self {
        BatchService { parallel: true }
    }

    /// Chooses between the parallel and the sequential fan-out (the results are
    /// identical either way; sequential exists for debugging and benchmarking).
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Executes every request and returns one outcome per request, in order.
    #[must_use]
    pub fn run(&self, requests: &[IseRequest]) -> Vec<Result<IseResponse, IseError>> {
        if self.parallel && requests.len() > 1 {
            requests.par_iter().map(Session::execute).collect()
        } else {
            requests.iter().map(Session::execute).collect()
        }
    }

    /// Executes every sweep request and returns one outcome per request, in order.
    ///
    /// Each sweep is answered from its own memoised cut pool (see
    /// [`Session::sweep`]); the per-request responses are byte-identical to
    /// sequential [`Session::execute_sweep`] runs, and the accompanying
    /// [`SweepStats`](ise_core::SweepStats) report the enumeration work each pool
    /// saved.
    #[must_use]
    pub fn run_sweeps(
        &self,
        requests: &[SweepRequest],
    ) -> Vec<Result<(SweepResponse, ise_core::SweepStats), IseError>> {
        if self.parallel && requests.len() > 1 {
            requests.par_iter().map(Session::execute_sweep).collect()
        } else {
            requests.iter().map(Session::execute_sweep).collect()
        }
    }

    /// Executes one corpus request: every program analysed by the exact single-cut
    /// search under the request's constraints, sharing enumeration work between
    /// structurally isomorphic blocks when the request's `dedup` flag is on.
    ///
    /// Programs are sharded across the work-stealing scheduler (unless the service or
    /// the request's driver options force the sequential path); the response lists
    /// outcomes in request order and is byte-identical whatever the thread count and
    /// whether dedup is on or off. The [`CorpusStats`] report how much enumeration the
    /// structural sharing saved, and the [`ShardProgress`] list how the work-stealing
    /// scheduler distributed the programs (empty on the sequential path; purely
    /// telemetry — never part of the deterministic payload).
    ///
    /// # Errors
    ///
    /// Returns [`IseError::InvalidRequest`] when the program list is empty or the
    /// constraints are out of domain, and propagates any program-source resolution
    /// failure ([`IseError::InvalidProgram`], unknown workload names).
    pub fn run_corpus(
        &self,
        request: &CorpusRequest,
    ) -> Result<(CorpusResponse, CorpusStats, Vec<ShardProgress>), IseError> {
        let cache = Arc::new(WarmPoolCache::new(WarmCacheConfig::default()));
        self.run_corpus_cached(request, &cache)
    }

    /// Executes one corpus request against a caller-owned [`WarmPoolCache`], so
    /// Pareto fills survive the request and warm every later one that sees the
    /// same `(structural key, exclusion state, budget group)`.
    ///
    /// The response is **byte-identical** to [`run_corpus`](Self::run_corpus) on
    /// a fresh cache: canonical-coordinate fills are schedule-independent, so a
    /// warm answer is the same answer, effort accounting included. This is the
    /// entry point of the serve mode ([`ServeService`](crate::ServeService)),
    /// where the cache lives for the whole process.
    ///
    /// # Errors
    ///
    /// Exactly as [`run_corpus`](Self::run_corpus).
    pub fn run_corpus_cached(
        &self,
        request: &CorpusRequest,
        cache: &Arc<WarmPoolCache>,
    ) -> Result<(CorpusResponse, CorpusStats, Vec<ShardProgress>), IseError> {
        Self::validate_corpus(request)?;
        // `resolve_corpus`: a multi-function `.ll` source contributes one program
        // per function, so the response may list more programs than the request.
        let programs: Vec<_> = request
            .programs
            .iter()
            .map(ProgramSource::resolve_corpus)
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .flatten()
            .collect();
        let corpus_options = self.corpus_options(request);
        let model = ise_hw::DefaultCostModel::new();
        let outcome = ise_core::run_corpus_warm(&programs, &model, &corpus_options, cache);
        let software = SoftwareLatencyModel::new();
        let outcomes = programs
            .iter()
            .zip(outcome.selections)
            .map(|(program, selection)| {
                let report = selection.speedup_report(program, &software);
                CorpusProgramOutcome {
                    program: program.name().to_string(),
                    selection,
                    report,
                }
            })
            .collect();
        Ok((
            CorpusResponse {
                constraints: request.constraints,
                programs: outcomes,
                templates: outcome.templates,
            },
            outcome.stats,
            outcome.shards,
        ))
    }

    /// Executes one corpus request in streaming mode: program sources resolve
    /// lazily and at most `max_in_flight` resolved programs are alive at once,
    /// so an arbitrarily long corpus runs under a bounded memory ceiling.
    ///
    /// The response is **byte-identical** to [`run_corpus`](Self::run_corpus) on
    /// the same request — streaming only bounds residency, never changes answers
    /// (fills are shared across the whole stream exactly as in the batch path).
    ///
    /// # Errors
    ///
    /// As [`run_corpus`](Self::run_corpus), plus `max_in_flight == 0` is an
    /// [`IseError::InvalidRequest`], and so is a `templates` budget: template
    /// selection needs every program's candidate sites at once, which is exactly
    /// the unbounded residency streaming exists to avoid. A program source that
    /// fails to resolve mid-stream stops the stream and returns its error
    /// (earlier programs have already been analysed at that point; the work is
    /// discarded).
    pub fn run_corpus_streaming(
        &self,
        request: &CorpusRequest,
        max_in_flight: usize,
    ) -> Result<(CorpusResponse, CorpusStats, Vec<ShardProgress>), IseError> {
        Self::validate_corpus(request)?;
        if max_in_flight == 0 {
            return Err(IseError::InvalidRequest(
                "streaming needs at least one in-flight program".to_string(),
            ));
        }
        if request.templates.is_some() {
            return Err(IseError::InvalidRequest(
                "template selection is corpus-global and unavailable in streaming mode".to_string(),
            ));
        }
        let corpus_options = self.corpus_options(request);
        let model = ise_hw::DefaultCostModel::new();
        let software = SoftwareLatencyModel::new();
        let mut outcomes = Vec::with_capacity(request.programs.len());
        let mut failure: Option<IseError> = None;
        let sources = request
            .programs
            .iter()
            .map_while(|source| match source.resolve_corpus() {
                Ok(programs) => Some(programs),
                Err(error) => {
                    failure = Some(error);
                    None
                }
            })
            .flatten();
        let stream = ise_core::run_corpus_streaming(
            sources,
            &model,
            &corpus_options,
            max_in_flight,
            |_, program, selection| {
                let report = selection.speedup_report(&program, &software);
                outcomes.push(CorpusProgramOutcome {
                    program: program.name().to_string(),
                    selection,
                    report,
                });
            },
        );
        if let Some(error) = failure {
            return Err(error);
        }
        Ok((
            CorpusResponse {
                constraints: request.constraints,
                programs: outcomes,
                templates: None,
            },
            stream.stats,
            stream.shards,
        ))
    }

    /// The request-independent corpus validation shared by all three entry points.
    fn validate_corpus(request: &CorpusRequest) -> Result<(), IseError> {
        if request.programs.is_empty() {
            return Err(IseError::InvalidRequest(
                "a corpus needs at least one program".to_string(),
            ));
        }
        if request.constraints.max_inputs == 0 || request.constraints.max_outputs == 0 {
            return Err(IseError::InvalidRequest(format!(
                "constraints must allow at least one read and one write port, got {}",
                request.constraints
            )));
        }
        Ok(())
    }

    /// Folds the request's knobs and this service's parallelism into [`CorpusOptions`].
    fn corpus_options(&self, request: &CorpusRequest) -> CorpusOptions {
        let mut driver = request.options;
        driver.parallel = driver.parallel && self.parallel;
        CorpusOptions::new(request.constraints)
            .with_driver(driver)
            .with_exploration_budget(request.config.exploration_budget)
            .with_dedup(request.dedup)
            .with_templates(request.templates.map(TemplateBudget::new))
    }
}

/// Per-program speed-up comparison between the exact single-cut search and the
/// two bundled heuristic baselines.
///
/// Kept out of [`CorpusStats`] on purpose: that struct is exact-integer telemetry
/// (`Eq`), while speed-ups are floating point. Baselines are diagnostics — they
/// are reported out of band (the CLI prints them on stderr under `--stats`) and
/// never become part of the deterministic corpus payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BaselineRow {
    /// Name of the analysed program.
    pub program: String,
    /// Whole-application speed-up of the exact single-cut selection.
    pub single_cut: f64,
    /// Whole-application speed-up of the MaxMISO baseline (Alippi et al.).
    pub maxmiso: f64,
    /// Whole-application speed-up of the Clubbing baseline (Baleani et al.).
    pub clubbing: f64,
}

/// The baseline comparison for one corpus: one [`BaselineRow`] per program plus
/// geometric-mean speed-ups across the corpus.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CorpusBaselines {
    /// One row per program, in request order.
    pub rows: Vec<BaselineRow>,
    /// Geometric mean of the single-cut speed-ups.
    pub geomean_single_cut: f64,
    /// Geometric mean of the MaxMISO speed-ups.
    pub geomean_maxmiso: f64,
    /// Geometric mean of the Clubbing speed-ups.
    pub geomean_clubbing: f64,
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = values.fold((0.0f64, 0usize), |(s, n), v| {
        (s + v.max(1e-300).ln(), n + 1)
    });
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}

impl BatchService {
    /// Runs the MaxMISO and Clubbing baselines next to the exact single-cut search
    /// on every program of a corpus request and tabulates the speed-ups.
    ///
    /// Shares the corpus request's constraints, exploration budget and driver
    /// options, so each row compares like for like. The three per-program jobs are
    /// fanned out through [`BatchService::run`], inheriting this service's
    /// parallelism setting.
    ///
    /// # Errors
    ///
    /// Propagates the first program-source resolution or execution failure.
    pub fn corpus_baselines(&self, request: &CorpusRequest) -> Result<CorpusBaselines, IseError> {
        use crate::request::Algorithm;
        const ALGORITHMS: [Algorithm; 3] = [
            Algorithm::SingleCut,
            Algorithm::MaxMiso,
            Algorithm::Clubbing,
        ];
        let jobs: Vec<IseRequest> = request
            .programs
            .iter()
            .flat_map(|source| {
                ALGORITHMS.map(|algorithm| {
                    IseRequest::new(algorithm, source.clone())
                        .with_constraints(request.constraints)
                        .with_config(request.config)
                        .with_options(request.options)
                })
            })
            .collect();
        let outcomes = self.run(&jobs);
        let mut rows = Vec::with_capacity(request.programs.len());
        for (source, chunk) in request.programs.iter().zip(outcomes.chunks(3)) {
            let mut speedups = [0.0f64; 3];
            for (slot, outcome) in speedups.iter_mut().zip(chunk) {
                match outcome {
                    Ok(response) => *slot = response.report.speedup,
                    Err(e) => return Err(e.clone()),
                }
            }
            rows.push(BaselineRow {
                program: source.name().to_string(),
                single_cut: speedups[0],
                maxmiso: speedups[1],
                clubbing: speedups[2],
            });
        }
        Ok(CorpusBaselines {
            geomean_single_cut: geomean(rows.iter().map(|r| r.single_cut)),
            geomean_maxmiso: geomean(rows.iter().map(|r| r.maxmiso)),
            geomean_clubbing: geomean(rows.iter().map(|r| r.clubbing)),
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Algorithm, ProgramSource};

    fn sample_requests() -> Vec<IseRequest> {
        let mut requests = Vec::new();
        for workload in ["adpcmdecode", "gsm"] {
            for algorithm in [Algorithm::SingleCut, Algorithm::MaxMiso] {
                requests.push(IseRequest::new(
                    algorithm,
                    ProgramSource::Workload(workload.into()),
                ));
            }
        }
        // One failing request in the middle of the batch.
        requests.insert(
            2,
            IseRequest::named("no-such", ProgramSource::Workload("gsm".into())),
        );
        requests
    }

    #[test]
    fn batches_are_ordered_and_error_isolating() {
        let requests = sample_requests();
        let outcomes = BatchService::new().run(&requests);
        assert_eq!(outcomes.len(), requests.len());
        assert!(outcomes[2].is_err(), "the bad request fails in place");
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == 2 {
                continue;
            }
            let response = outcome.as_ref().expect("good requests succeed");
            assert_eq!(response.program, requests[i].program.name());
            assert_eq!(response.algorithm, requests[i].algorithm);
        }
    }

    #[test]
    fn cached_and_streaming_corpus_runs_match_the_batch_run() {
        let request = CorpusRequest::new(vec![
            ProgramSource::Workload("adpcmdecode".into()),
            ProgramSource::Workload("gsm".into()),
            ProgramSource::Workload("adpcmdecode".into()),
        ]);
        let service = BatchService::new();
        let (batch, _, _) = service.run_corpus(&request).expect("valid corpus");
        let cache = Arc::new(WarmPoolCache::new(WarmCacheConfig::default()));
        let (cold, _, _) = service
            .run_corpus_cached(&request, &cache)
            .expect("valid corpus");
        let (warm, warm_stats, _) = service
            .run_corpus_cached(&request, &cache)
            .expect("valid corpus");
        assert_eq!(crate::to_json(&batch), crate::to_json(&cold));
        assert_eq!(crate::to_json(&batch), crate::to_json(&warm));
        assert_eq!(
            warm_stats.pool_fills, 0,
            "the second run answers every block from the warm cache"
        );
        for max_in_flight in [1, 2, 8] {
            let (streamed, _, _) = service
                .run_corpus_streaming(&request, max_in_flight)
                .expect("valid corpus");
            assert_eq!(
                crate::to_json(&batch),
                crate::to_json(&streamed),
                "max_in_flight {max_in_flight}"
            );
        }
    }

    /// Two functions in one `.ll` module; the corpus paths must analyse them as
    /// two programs, exactly as if each had been lowered from its own file.
    const PAIR_LL: &str = r#"
define i32 @mac3(i32 %a, i32 %b, i32 %c) {
entry:
  %mul = mul i32 %a, %b
  %add = add i32 %mul, %c
  %shl = shl i32 %add, 2
  %sum = add i32 %shl, %mul
  ret i32 %sum
}

define i32 @mixbits(i32 %x, i32 %y) {
entry:
  %xor = xor i32 %x, %y
  %shr = lshr i32 %xor, 3
  %and = and i32 %shr, 151
  %or = or i32 %and, %x
  %not = xor i32 %or, -1
  ret i32 %not
}
"#;

    #[test]
    fn multi_function_ll_slices_match_functions_lowered_alone() {
        let split = PAIR_LL.find("define i32 @mixbits").expect("two defines");
        let merged = CorpusRequest::new(vec![ProgramSource::LlvmIr {
            name: "pair".into(),
            text: PAIR_LL.into(),
        }]);
        let service = BatchService::new();
        let (sliced, _, _) = service.run_corpus(&merged).expect("valid corpus");
        assert_eq!(
            sliced.programs.len(),
            2,
            "one outcome per function, not one merged program"
        );
        assert_eq!(sliced.programs[0].program, "pair.mac3");
        assert_eq!(sliced.programs[1].program, "pair.mixbits");
        let alone = CorpusRequest::new(vec![
            ProgramSource::LlvmIr {
                name: "pair.mac3".into(),
                text: PAIR_LL[..split].to_string(),
            },
            ProgramSource::LlvmIr {
                name: "pair.mixbits".into(),
                text: PAIR_LL[split..].to_string(),
            },
        ]);
        let (separate, _, _) = service.run_corpus(&alone).expect("valid corpus");
        assert_eq!(
            crate::to_json(&sliced),
            crate::to_json(&separate),
            "per-function selections are byte-identical to lowering each function alone"
        );
        let (streamed, _, _) = service
            .run_corpus_streaming(&merged, 1)
            .expect("valid corpus");
        assert_eq!(crate::to_json(&sliced), crate::to_json(&streamed));
    }

    #[test]
    fn template_budget_reports_without_changing_selections() {
        let request = CorpusRequest::new(vec![
            ProgramSource::Workload("adpcmdecode".into()),
            ProgramSource::Workload("adpcmdecode".into()),
        ]);
        let service = BatchService::new();
        let (plain, plain_stats, _) = service.run_corpus(&request).expect("valid corpus");
        assert!(plain.templates.is_none());

        let budgeted = request.clone().with_templates(Some(1.0e9));
        let (with, stats, _) = service.run_corpus(&budgeted).expect("valid corpus");
        let report = with.templates.as_ref().expect("report present");
        assert!(report.speedup >= 1.0);
        assert_eq!(
            with.programs, plain.programs,
            "template reporting is additive; per-program selections are untouched"
        );
        assert_eq!(stats, plain_stats);

        let text = crate::to_json(&with);
        let back: CorpusResponse = crate::from_json(&text).expect("round trip");
        assert_eq!(back, with);

        let err = service.run_corpus_streaming(&budgeted, 2).unwrap_err();
        assert!(matches!(&err, IseError::InvalidRequest(m) if m.contains("streaming")));
    }

    #[test]
    fn parallel_and_sequential_batches_are_byte_identical() {
        let requests = sample_requests();
        let parallel = BatchService::new().run(&requests);
        let sequential = BatchService::new().with_parallel(false).run(&requests);
        for (p, s) in parallel.iter().zip(&sequential) {
            match (p, s) {
                (Ok(p), Ok(s)) => assert_eq!(crate::to_json(p), crate::to_json(s)),
                (Err(p), Err(s)) => assert_eq!(p, s),
                other => panic!("parallel/sequential outcome mismatch: {other:?}"),
            }
        }
    }
}
