//! The serialisable job vocabulary: algorithms, program sources, requests and
//! responses.

use std::fmt;
use std::str::FromStr;

use ise_core::{Constraints, DriverOptions, IdentifierConfig, IseError, SelectionResult};
use ise_hw::speedup::SpeedupReport;
use ise_ir::Program;

/// The bundled identification algorithms, as a closed enum.
///
/// The registry remains open (any crate can register more identifiers under new
/// names); this enum covers the six algorithms shipped with the workspace and
/// converts to/from their stable registry names, so callers can choose between
/// compile-time safety ([`crate::SessionBuilder::algorithm`]) and data-driven
/// dispatch ([`crate::SessionBuilder::algorithm_name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Algorithm {
    /// The exact single-cut branch-and-bound search (paper Section 6.1).
    SingleCut,
    /// The exact multiple-cut search (paper Section 6.2).
    MultiCut,
    /// The brute-force enumeration oracle (tests and small blocks only).
    Exhaustive,
    /// The Clubbing baseline (Baleani et al., CODES 2002).
    Clubbing,
    /// The MaxMISO baseline (Alippi et al., DATE 1999).
    MaxMiso,
    /// The trivial one-node-per-instruction sanity floor.
    SingleNode,
}

impl Algorithm {
    /// All bundled algorithms, in registry order.
    #[must_use]
    pub fn all() -> [Algorithm; 6] {
        [
            Algorithm::SingleCut,
            Algorithm::MultiCut,
            Algorithm::Exhaustive,
            Algorithm::Clubbing,
            Algorithm::MaxMiso,
            Algorithm::SingleNode,
        ]
    }

    /// The stable registry name of the algorithm.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::SingleCut => "single-cut",
            Algorithm::MultiCut => "multicut",
            Algorithm::Exhaustive => "exhaustive",
            Algorithm::Clubbing => "clubbing",
            Algorithm::MaxMiso => "maxmiso",
            Algorithm::SingleNode => "single-node",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Algorithm {
    type Err = IseError;

    /// Parses a registry name, with the registry's lookup rules (case-insensitive,
    /// `_` and `-` interchangeable).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let canonical = ise_core::IdentifierRegistry::canonical_name(s);
        Algorithm::all()
            .into_iter()
            .find(|a| a.name() == canonical)
            .ok_or_else(|| IseError::UnknownAlgorithm {
                requested: s.to_string(),
                available: Algorithm::all().iter().map(|a| a.name().into()).collect(),
            })
    }
}

/// A whole-program transformation applied by a [`crate::Session`] before
/// identification.
///
/// The pipeline operates on the per-block dataflow graphs (if-conversion happens
/// upstream, when a control-flow function is lowered to a [`Program`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Pass {
    /// Constant folding on every basic block.
    ConstFold,
    /// Dead-code elimination on every basic block.
    Dce,
}

/// Where a request's program comes from.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ProgramSource {
    /// A bundled benchmark, referenced by its suite name (e.g. `"adpcmdecode"`).
    ///
    /// Keeps request files small and lets remote callers name workloads they do
    /// not hold locally.
    Workload(String),
    /// A full program carried inline in the request.
    Inline(Program),
    /// Textual LLVM IR (`.ll`) carried inline, lowered on resolution by the
    /// dependency-free [`ise_frontend`] parser.
    ///
    /// `name` labels the resulting program (and error messages); it is usually
    /// the source file path.
    LlvmIr {
        /// Program name / source label, usually the `.ll` file path.
        name: String,
        /// The full textual LLVM IR module.
        text: String,
    },
}

impl ProgramSource {
    /// Resolves the source into a validated program.
    ///
    /// Inline programs are treated as untrusted data and validated before any
    /// algorithm sees them. Their derived use-lists are already trustworthy:
    /// graph deserialisation rebuilds them from the operands instead of reading
    /// them off the wire.
    ///
    /// # Errors
    ///
    /// Returns [`IseError::InvalidRequest`] for an unknown workload name (the
    /// message lists the bundled names), [`IseError::InvalidProgram`] for a
    /// structurally invalid inline program, and [`IseError::Frontend`] (with
    /// source position) for textual LLVM IR that fails to parse or lower.
    pub fn resolve(&self) -> Result<Program, IseError> {
        match self {
            ProgramSource::Workload(name) => ise_workloads::suite::by_name(name).ok_or_else(|| {
                IseError::InvalidRequest(format!(
                    "unknown workload `{name}`; bundled workloads: {}",
                    ise_workloads::suite::names().join(", ")
                ))
            }),
            ProgramSource::Inline(program) => {
                program.validate()?;
                Ok(program.clone())
            }
            ProgramSource::LlvmIr { name, text } => {
                let program =
                    ise_frontend::parse_and_lower(name, text).map_err(|e| IseError::Frontend {
                        file: name.clone(),
                        line: e.line,
                        column: e.column,
                        message: e.message,
                    })?;
                program.validate()?;
                Ok(program)
            }
        }
    }

    /// Resolves the source for a corpus, where an LLVM IR module with several
    /// `define`s contributes one program **per function** (named
    /// `<name>.<function>`, in source order) instead of an accidental merge of
    /// every function's blocks into one program. Single-function modules,
    /// workloads and inline programs resolve exactly as [`resolve`](Self::resolve),
    /// so corpora without multi-function `.ll` sources are byte-identical to
    /// before.
    ///
    /// # Errors
    ///
    /// Exactly as [`resolve`](Self::resolve).
    pub fn resolve_corpus(&self) -> Result<Vec<Program>, IseError> {
        match self {
            ProgramSource::LlvmIr { name, text } => {
                let programs =
                    ise_frontend::parse_and_lower_functions(name, text).map_err(|e| {
                        IseError::Frontend {
                            file: name.clone(),
                            line: e.line,
                            column: e.column,
                            message: e.message,
                        }
                    })?;
                for program in &programs {
                    program.validate()?;
                }
                Ok(programs)
            }
            other => other.resolve().map(|program| vec![program]),
        }
    }

    /// The program name this source refers to, without resolving it.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            ProgramSource::Workload(name) => name,
            ProgramSource::Inline(program) => program.name(),
            ProgramSource::LlvmIr { name, .. } => name,
        }
    }
}

/// One serialisable identification job: program, algorithm and all knobs.
///
/// A request is pure data — it can be built in-process, read from a JSON file by
/// `ise-cli`, or received over a wire — and is executed by
/// [`Session::execute`](crate::Session::execute) or fanned out with
/// [`BatchService`](crate::BatchService).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IseRequest {
    /// Registry name of the identification algorithm.
    pub algorithm: String,
    /// The program to optimise.
    pub program: ProgramSource,
    /// Microarchitectural constraints (`Nin`, `Nout`, optional budgets).
    pub constraints: Constraints,
    /// Algorithm construction parameters (exploration budget, multicut slots, …).
    pub config: IdentifierConfig,
    /// Program-driver options (`Ninstr`, parallel fan-out).
    pub options: DriverOptions,
    /// Pass pipeline applied before identification, in order.
    pub passes: Vec<Pass>,
}

impl IseRequest {
    /// Creates a request with default constraints, config, options and no passes.
    #[must_use]
    pub fn new(algorithm: Algorithm, program: ProgramSource) -> Self {
        IseRequest {
            algorithm: algorithm.name().to_string(),
            program,
            constraints: Constraints::default(),
            config: IdentifierConfig::default(),
            options: DriverOptions::default(),
            passes: Vec::new(),
        }
    }

    /// Creates a request for an algorithm addressed by registry name.
    #[must_use]
    pub fn named(algorithm: impl Into<String>, program: ProgramSource) -> Self {
        IseRequest {
            algorithm: algorithm.into(),
            program,
            constraints: Constraints::default(),
            config: IdentifierConfig::default(),
            options: DriverOptions::default(),
            passes: Vec::new(),
        }
    }

    /// Sets the microarchitectural constraints.
    #[must_use]
    pub fn with_constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the algorithm construction parameters.
    #[must_use]
    pub fn with_config(mut self, config: IdentifierConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the program-driver options.
    #[must_use]
    pub fn with_options(mut self, options: DriverOptions) -> Self {
        self.options = options;
        self
    }

    /// Appends a pass to the pre-identification pipeline.
    #[must_use]
    pub fn with_pass(mut self, pass: Pass) -> Self {
        self.passes.push(pass);
        self
    }
}

/// One serialisable *sweep* job: a base request plus the `(Nin, Nout)` pairs to
/// answer it under.
///
/// The base request's own `constraints` field is ignored — the sweep list is the
/// authoritative set of pairs. Executed by
/// [`Session::sweep`](crate::Session::sweep) /
/// [`Session::execute_sweep`](crate::Session::execute_sweep), which answer every
/// pair from a memoised [cut pool](ise_core::pool) when
/// [`DriverOptions::cut_pool`] is on (the default) and per-pair directly
/// otherwise; the response is byte-identical either way.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepRequest {
    /// The job description: program, algorithm and all knobs except the pair list.
    pub request: IseRequest,
    /// The constraint pairs to answer, in response order.
    pub sweep: Vec<Constraints>,
}

impl SweepRequest {
    /// Creates a sweep over the given pairs.
    #[must_use]
    pub fn new(request: IseRequest, sweep: Vec<Constraints>) -> Self {
        SweepRequest { request, sweep }
    }

    /// Creates a sweep over the paper's published Fig. 11 pairs.
    #[must_use]
    pub fn paper_sweep(request: IseRequest) -> Self {
        SweepRequest::new(request, Constraints::paper_sweep())
    }
}

/// The result of one pair of a sweep: exactly the selection and report a single-pair
/// [`Session::run`](crate::Session::run) under these constraints would produce.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepPairOutcome {
    /// The constraint pair this outcome was computed under.
    pub constraints: Constraints,
    /// The selected instructions and the (direct-search-identical) effort accounting.
    pub selection: SelectionResult,
    /// Whole-application speed-up accounting for the selection.
    pub report: SpeedupReport,
}

/// The result of one sweep job: one [`SweepPairOutcome`] per requested pair, in
/// request order.
///
/// Deliberately free of any pool/memoisation metadata, so the payload is
/// byte-identical between the pool-backed and the direct execution mode (the planner's
/// [`SweepStats`](ise_core::SweepStats) are reported out of band).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepResponse {
    /// Name of the program that was optimised.
    pub program: String,
    /// Registry name of the algorithm that ran.
    pub algorithm: String,
    /// One outcome per requested constraint pair, in request order.
    pub pairs: Vec<SweepPairOutcome>,
}

/// One serialisable *corpus* job: many programs analysed together under one
/// constraint set by the exact single-cut search, sharing enumeration work between
/// structurally isomorphic basic blocks when `dedup` is on (the default).
///
/// Executed by [`BatchService::run_corpus`](crate::BatchService::run_corpus), which
/// shards the programs across the work-stealing scheduler; the response is
/// byte-identical whatever the thread count and whether dedup is on or off (the
/// [`CorpusStats`](ise_core::CorpusStats) are reported out of band).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusRequest {
    /// The programs to analyse, in response order.
    pub programs: Vec<ProgramSource>,
    /// Microarchitectural constraints shared by the whole corpus.
    pub constraints: Constraints,
    /// Algorithm construction parameters (only `exploration_budget` applies).
    pub config: IdentifierConfig,
    /// Program-driver options (`Ninstr`, parallel fan-out).
    pub options: DriverOptions,
    /// Share Pareto fills between isomorphic blocks (`true`, the default) or run the
    /// reference per-program searches. Both modes produce byte-identical responses.
    pub dedup: bool,
    /// Optional cross-site template selection: the area budget to select instruction
    /// templates under, across the whole corpus (see
    /// [`TemplateReport`](ise_core::TemplateReport)). Absent on the wire when unset.
    pub templates: Option<f64>,
}

/// Hand-rolled so that an unset `templates` stays *off* the wire entirely: requests
/// without the knob serialise byte-identically to the pre-template format.
impl serde::Serialize for CorpusRequest {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("programs".to_string(), self.programs.to_value()),
            ("constraints".to_string(), self.constraints.to_value()),
            ("config".to_string(), self.config.to_value()),
            ("options".to_string(), self.options.to_value()),
            ("dedup".to_string(), self.dedup.to_value()),
        ];
        if let Some(budget) = self.templates {
            fields.push(("templates".to_string(), budget.to_value()));
        }
        serde::Value::Object(fields)
    }
}

/// Hand-rolled so that everything except `programs` is optional on the wire: a corpus
/// request file can be just a program list, and future knobs stay backward-compatible.
impl<'de> serde::Deserialize<'de> for CorpusRequest {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        fn optional_or<T: serde::DeserializeOwned>(
            fields: &[(String, serde::Value)],
            name: &str,
            fallback: T,
        ) -> Result<T, serde::Error> {
            match fields.iter().find(|(key, _)| key == name) {
                None => Ok(fallback),
                Some((_, field)) => serde::Deserialize::from_value(field).map_err(|e| {
                    serde::Error::custom(format!("field `{name}` of `CorpusRequest`: {e}"))
                }),
            }
        }
        let fields = serde::expect_object(value, "CorpusRequest")?;
        Ok(CorpusRequest {
            programs: serde::expect_field(fields, "programs", "CorpusRequest")?,
            constraints: optional_or(fields, "constraints", Constraints::default())?,
            config: optional_or(fields, "config", IdentifierConfig::default())?,
            options: optional_or(fields, "options", DriverOptions::default())?,
            dedup: optional_or(fields, "dedup", true)?,
            templates: optional_or(fields, "templates", None)?,
        })
    }
}

impl CorpusRequest {
    /// Creates a corpus request with default constraints, config and options.
    #[must_use]
    pub fn new(programs: Vec<ProgramSource>) -> Self {
        CorpusRequest {
            programs,
            constraints: Constraints::default(),
            config: IdentifierConfig::default(),
            options: DriverOptions::default(),
            dedup: true,
            templates: None,
        }
    }

    /// Sets the microarchitectural constraints.
    #[must_use]
    pub fn with_constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the algorithm construction parameters.
    #[must_use]
    pub fn with_config(mut self, config: IdentifierConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the program-driver options.
    #[must_use]
    pub fn with_options(mut self, options: DriverOptions) -> Self {
        self.options = options;
        self
    }

    /// Enables or disables cross-program structural deduplication.
    #[must_use]
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Sets (or clears) the cross-site template-selection area budget.
    #[must_use]
    pub fn with_templates(mut self, area_budget: Option<f64>) -> Self {
        self.templates = area_budget;
        self
    }
}

/// The result for one program of a corpus: exactly the selection and report a
/// standalone single-cut [`Session::run`](crate::Session::run) on that program (same
/// constraints, same knobs) would produce.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CorpusProgramOutcome {
    /// Name of the analysed program.
    pub program: String,
    /// The selected instructions and the (dedup-independent) effort accounting.
    pub selection: SelectionResult,
    /// Whole-application speed-up accounting for the selection.
    pub report: SpeedupReport,
}

/// The result of one corpus job: one [`CorpusProgramOutcome`] per program, in request
/// order.
///
/// Deliberately free of any dedup/sharding metadata, so the payload is byte-identical
/// between the deduplicated and the reference execution mode (the
/// [`CorpusStats`](ise_core::CorpusStats) and per-shard progress are reported out of
/// band).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusResponse {
    /// The constraints the corpus ran under.
    pub constraints: Constraints,
    /// One outcome per program, in request order.
    pub programs: Vec<CorpusProgramOutcome>,
    /// The cross-site template selection, present iff the request set `templates`.
    pub templates: Option<ise_core::TemplateReport>,
}

/// Hand-rolled so that the `templates` report is *omitted* (not `null`) when the
/// request did not ask for one — responses to template-free requests stay
/// byte-identical to the pre-template format, which the serve-mode soak test
/// compares byte-for-byte against one-shot references.
impl serde::Serialize for CorpusResponse {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("constraints".to_string(), self.constraints.to_value()),
            ("programs".to_string(), self.programs.to_value()),
        ];
        if let Some(report) = &self.templates {
            fields.push(("templates".to_string(), report.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl<'de> serde::Deserialize<'de> for CorpusResponse {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let fields = serde::expect_object(value, "CorpusResponse")?;
        let templates = match fields.iter().find(|(key, _)| key == "templates") {
            None => None,
            Some((_, field)) => serde::Deserialize::from_value(field).map_err(|e| {
                serde::Error::custom(format!("field `templates` of `CorpusResponse`: {e}"))
            })?,
        };
        Ok(CorpusResponse {
            constraints: serde::expect_field(fields, "constraints", "CorpusResponse")?,
            programs: serde::expect_field(fields, "programs", "CorpusResponse")?,
            templates,
        })
    }
}

/// The result of one identification job.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IseResponse {
    /// Name of the program that was optimised.
    pub program: String,
    /// Registry name of the algorithm that ran.
    pub algorithm: String,
    /// The constraints the job ran under.
    pub constraints: Constraints,
    /// The selected instructions and the search-effort statistics.
    pub selection: SelectionResult,
    /// Whole-application speed-up accounting for the selection.
    pub report: SpeedupReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names_round_trip_through_from_str() {
        for algorithm in Algorithm::all() {
            assert_eq!(algorithm.name().parse::<Algorithm>(), Ok(algorithm));
            assert_eq!(algorithm.to_string(), algorithm.name());
        }
        assert_eq!("Single_Cut".parse::<Algorithm>(), Ok(Algorithm::SingleCut));
        let err = "nope".parse::<Algorithm>().unwrap_err();
        assert!(err.to_string().contains("single-cut"), "{err}");
    }

    #[test]
    fn enum_names_match_the_live_registry() {
        let registered = crate::algorithm_names();
        for algorithm in Algorithm::all() {
            assert!(registered.contains(&algorithm.name()), "{algorithm}");
        }
        assert_eq!(registered.len(), Algorithm::all().len());
    }

    #[test]
    fn unknown_workloads_list_the_bundled_names() {
        let err = ProgramSource::Workload("nope".into())
            .resolve()
            .unwrap_err();
        assert!(matches!(&err, IseError::InvalidRequest(m) if m.contains("adpcmdecode")));
    }

    #[test]
    fn corpus_wire_format_omits_templates_when_unset() {
        let request = CorpusRequest::new(vec![ProgramSource::Workload("gsm".into())]);
        let text = crate::to_json(&request);
        assert!(
            !text.contains("templates"),
            "no budget, no key on the wire: {text}"
        );
        let back: CorpusRequest = crate::from_json(&text).expect("round trip");
        assert_eq!(back, request);

        let budgeted = request.with_templates(Some(40.0));
        let text = crate::to_json(&budgeted);
        assert!(text.contains("\"templates\""), "{text}");
        let back: CorpusRequest = crate::from_json(&text).expect("round trip");
        assert_eq!(back, budgeted);

        let response = CorpusResponse {
            constraints: Constraints::default(),
            programs: Vec::new(),
            templates: None,
        };
        let text = crate::to_json(&response);
        assert!(
            !text.contains("templates"),
            "no report, no key on the wire: {text}"
        );
        let back: CorpusResponse = crate::from_json(&text).expect("round trip");
        assert_eq!(back, response);
    }

    #[test]
    fn requests_round_trip_through_json() {
        let request = IseRequest::new(Algorithm::MultiCut, ProgramSource::Workload("gsm".into()))
            .with_constraints(Constraints::new(4, 2).with_max_area(1.5))
            .with_config(IdentifierConfig::default().with_multicut_slots(3))
            .with_pass(Pass::ConstFold)
            .with_pass(Pass::Dce);
        let text = crate::to_json(&request);
        let back: IseRequest = crate::from_json(&text).expect("round trip");
        assert_eq!(back, request);
        assert_eq!(crate::to_json(&back), text);
    }
}
