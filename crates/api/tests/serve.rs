//! Serve-mode integration suite: cache persistence round-trips, corruption
//! fallbacks, eviction identity, and the TCP JSONL server end-to-end.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use ise_api::{
    json, Algorithm, CorpusRequest, IseRequest, ProgramSource, ServeConfig, ServeService, Server,
    Session, SweepRequest, SNAPSHOT_FILE,
};
use ise_core::Constraints;

/// A fresh per-test scratch directory under the system temp dir.
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ise-api-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn envelope(id: u64, kind: &str, request: Option<json::Value>) -> String {
    let mut fields = vec![
        ("id".to_string(), json::to_value(&id)),
        ("kind".to_string(), json::Value::Str(kind.to_string())),
    ];
    if let Some(request) = request {
        fields.push(("request".to_string(), request));
    }
    json::to_string(&json::Value::Object(fields))
}

fn corpus_request(programs: &[&str], constraints: Constraints) -> CorpusRequest {
    CorpusRequest::new(
        programs
            .iter()
            .map(|name| ProgramSource::Workload((*name).to_string()))
            .collect(),
    )
    .with_constraints(constraints)
}

fn corpus_line(id: u64, programs: &[&str], constraints: Constraints) -> String {
    envelope(
        id,
        "corpus",
        Some(json::to_value(&corpus_request(programs, constraints))),
    )
}

/// Extracts the number of pool fills from a `stats` response line.
fn fills(service: &ServeService) -> u64 {
    service.cache_stats().fills
}

#[test]
fn snapshot_roundtrip_restart_is_byte_identical_to_cold() {
    let dir = temp_dir("roundtrip");
    let config = ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let line = corpus_line(
        1,
        &["adpcmdecode", "gsm", "adpcmdecode"],
        Constraints::new(4, 2),
    );

    let first = ServeService::new(&config);
    assert_eq!(first.warm_loaded(), None, "no snapshot yet: cold start");
    let cold = first.handle(&line);
    let cold_fills = fills(&first);
    assert!(cold_fills > 0);
    let saved = first
        .save_snapshot()
        .expect("snapshot write succeeds")
        .expect("cache dir configured");
    assert!(saved > 0, "the cold run left fills to persist");
    assert!(dir.join(SNAPSHOT_FILE).is_file());

    // "Restart": a brand-new service over the same cache directory.
    let second = ServeService::new(&config);
    assert_eq!(
        second.warm_loaded(),
        Some(saved),
        "warm start loads every persisted fill"
    );
    let warm = second.handle(&line);
    assert_eq!(cold, warm, "warm-started answers must be byte-identical");
    assert_eq!(
        fills(&second),
        0,
        "nothing left to enumerate after warm start"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_snapshots_fall_back_to_cold_start() {
    let dir = temp_dir("damaged");
    let config = ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let line = corpus_line(1, &["adpcmdecode", "adpcmencode"], Constraints::new(4, 2));
    let reference = ServeService::new(&config);
    let cold = reference.handle(&line);
    reference
        .save_snapshot()
        .expect("snapshot write succeeds")
        .expect("cache dir configured");
    let path = dir.join(SNAPSHOT_FILE);
    let pristine = std::fs::read(&path).expect("snapshot readable");

    type Damage<'a> = (&'a str, Box<dyn Fn(&Path)>);
    let damage: [Damage; 4] = [
        (
            "truncated",
            Box::new(|p| {
                let bytes = std::fs::read(p).unwrap();
                std::fs::write(p, &bytes[..bytes.len() / 2]).unwrap();
            }),
        ),
        (
            "bit-flipped checksum trailer",
            Box::new(|p| {
                let mut bytes = std::fs::read(p).unwrap();
                let last = bytes.len() - 1;
                bytes[last] ^= 0x55;
                std::fs::write(p, &bytes).unwrap();
            }),
        ),
        (
            "version bumped",
            Box::new(|p| {
                let mut bytes = std::fs::read(p).unwrap();
                // The u32 format version sits right after the 8-byte magic.
                bytes[8] = bytes[8].wrapping_add(1);
                std::fs::write(p, &bytes).unwrap();
            }),
        ),
        (
            "garbage",
            Box::new(|p| std::fs::write(p, b"not a snapshot at all").unwrap()),
        ),
    ];
    for (label, damage) in damage {
        std::fs::write(&path, &pristine).unwrap();
        damage(&path);
        let service = ServeService::new(&config);
        assert_eq!(
            service.warm_loaded(),
            None,
            "{label}: a damaged snapshot must cold-start, not error"
        );
        let answer = service.handle(&line);
        assert_eq!(
            answer, cold,
            "{label}: cold fallback still answers correctly"
        );
        assert!(fills(&service) > 0, "{label}: the fallback re-enumerates");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_under_a_tiny_byte_budget_never_changes_answers() {
    let unbounded = ServeService::new(&ServeConfig::default());
    let squeezed = ServeService::new(&ServeConfig {
        cache_bytes: Some(2_000),
        ..ServeConfig::default()
    });
    // Distinct budget groups (constraint pairs) create distinct cache entries, so
    // the tiny budget keeps evicting while the unbounded cache keeps everything.
    let pairs = [
        Constraints::new(2, 1),
        Constraints::new(3, 2),
        Constraints::new(4, 2),
        Constraints::new(2, 2),
    ];
    for round in 0..2 {
        for (i, constraints) in pairs.iter().enumerate() {
            let line = corpus_line(
                (round * pairs.len() + i) as u64,
                &["adpcmdecode", "adpcmdecode", "gsm"],
                *constraints,
            );
            assert_eq!(
                unbounded.handle(&line),
                squeezed.handle(&line),
                "round {round}, constraints {constraints}"
            );
        }
    }
    let stats = squeezed.cache_stats();
    assert!(
        stats.evictions > 0,
        "the 2 kB budget must actually evict: {stats:?}"
    );
    assert!(
        squeezed.cache_stats().bytes_used <= 2_000,
        "eviction keeps the cache under budget"
    );
}

#[test]
fn tcp_server_serves_mixed_requests_and_shuts_down_gracefully() {
    let run_request = IseRequest::new(
        Algorithm::SingleCut,
        ProgramSource::Workload("adpcmdecode".into()),
    );
    let sweep_request = SweepRequest::paper_sweep(IseRequest::new(
        Algorithm::SingleCut,
        ProgramSource::Workload("gsm".into()),
    ));
    let corpus = corpus_request(&["adpcmdecode", "gsm"], Constraints::new(4, 2));

    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let result = server.run(&stop);
            assert!(result.is_ok(), "{result:?}");
        })
    };

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let lines = [
        envelope(1, "run", Some(json::to_value(&run_request))),
        envelope(2, "sweep", Some(json::to_value(&sweep_request))),
        envelope(3, "corpus", Some(json::to_value(&corpus))),
        envelope(4, "stats", None),
    ];
    for line in &lines {
        writeln!(writer, "{line}").expect("send");
    }
    writer.flush().expect("flush");

    let mut responses = Vec::new();
    for _ in 0..lines.len() {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => panic!("server closed early; got {responses:?}"),
            Ok(_) => {}
            Err(e) => panic!("read failed: {e}"),
        }
        responses.push(line.trim().to_string());
    }
    // Responses may arrive out of order; correlate by id.
    let by_id = |id: &str| {
        responses
            .iter()
            .find(|r| r.starts_with(&format!("{{\"id\":{id},")))
            .unwrap_or_else(|| panic!("no response for id {id}: {responses:?}"))
    };
    let oneshot_run = Session::execute(&run_request).expect("valid request");
    assert_eq!(
        by_id("1"),
        &json::to_string(&json::Value::Object(vec![
            ("id".to_string(), json::to_value(&1u64)),
            ("response".to_string(), json::to_value(&oneshot_run)),
        ]))
    );
    let (oneshot_sweep, _) = Session::execute_sweep(&sweep_request).expect("valid sweep");
    assert_eq!(
        by_id("2"),
        &json::to_string(&json::Value::Object(vec![
            ("id".to_string(), json::to_value(&2u64)),
            ("response".to_string(), json::to_value(&oneshot_sweep)),
        ]))
    );
    assert!(by_id("3").contains("\"response\""), "{responses:?}");
    assert!(by_id("4").contains("\"hits\""), "{responses:?}");

    writeln!(writer, "{}", envelope(9, "shutdown", None)).expect("send shutdown");
    writer.flush().expect("flush");
    let mut bye = String::new();
    reader.read_line(&mut bye).expect("shutdown response");
    assert!(bye.contains("shutting down"), "{bye}");
    handle.join().expect("server thread exits cleanly");
}

#[test]
fn full_queues_answer_busy_instead_of_buffering() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let _ = server.run(&stop);
        })
    };

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    // A burst far larger than 1 worker + 1 queue slot can hold: with corpus
    // requests costing milliseconds and enqueueing costing microseconds, some
    // of these must bounce with the backpressure error.
    let total = 32;
    let line = corpus_line(0, &["adpcmdecode", "adpcmdecode"], Constraints::new(4, 2));
    for _ in 0..total {
        writeln!(writer, "{line}").expect("send");
    }
    writer.flush().expect("flush");

    let mut ok = 0;
    let mut busy = 0;
    for _ in 0..total {
        let mut response = String::new();
        reader.read_line(&mut response).expect("response");
        if response.contains("server busy") {
            busy += 1;
        } else {
            assert!(response.contains("\"response\""), "{response}");
            ok += 1;
        }
    }
    assert_eq!(ok + busy, total);
    assert!(ok >= 1, "at least the first request is served");
    assert!(busy >= 1, "the burst must overflow the 1-slot queue");

    writeln!(writer, "{}", envelope(9, "shutdown", None)).expect("send shutdown");
    writer.flush().expect("flush");
    handle.join().expect("server thread exits");
}
