//! The LLVM front-end gate and benchmark.
//!
//! The gate parses every bundled `.ll` fixture with [`ise_frontend`], lowers it,
//! runs the exact single-cut identification over the resulting corpus, and
//! differentially checks that the hand-written `crc32-flat.ll` — a textual
//! transliteration of the hand-built `crc32_kernel` of `ise-workloads` — selects
//! exactly the same instructions as the in-memory original. The benchmark times
//! parsing throughput (lines/sec over the fixture set) and the end-to-end
//! text-to-selection wall-clock, emitting the machine-readable
//! `BENCH_frontend.json`.

use std::path::{Path, PathBuf};
use std::time::Instant;

use ise_core::{run_corpus, CorpusOptions};
use ise_hw::DefaultCostModel;
use ise_ir::Program;

/// The `crc32_kernel` execution frequency (`crates/workloads`), applied to the
/// lowered `crc32-flat.ll` so the differential comparison is like for like.
pub const CRC_EXEC_COUNT: u64 = 80_000;

/// The bundled fixture directory, resolved relative to this crate's manifest.
#[must_use]
pub fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../frontend/fixtures")
}

/// One parsed fixture: its file name, raw text and lowered program.
pub struct Fixture {
    /// File name (`crc32-O0.ll`, …).
    pub name: String,
    /// The raw `.ll` text.
    pub text: String,
    /// The lowered, validated program.
    pub program: Program,
}

/// Parses and lowers every bundled fixture, in name order.
///
/// # Errors
///
/// Returns a rendered `file:line:column` message for the first fixture that
/// fails to read, parse, lower or validate.
pub fn load_fixtures() -> Result<Vec<Fixture>, String> {
    let dir = fixtures_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".ll"))
        .collect();
    names.sort();
    let mut fixtures = Vec::with_capacity(names.len());
    for name in names {
        let text = std::fs::read_to_string(dir.join(&name))
            .map_err(|e| format!("cannot read {name}: {e}"))?;
        let program = ise_frontend::parse_and_lower(name.trim_end_matches(".ll"), &text)
            .map_err(|e| format!("{name}:{}:{}: {}", e.line, e.column, e.message))?;
        program
            .validate()
            .map_err(|e| format!("{name}: lowered program is invalid: {e}"))?;
        fixtures.push(Fixture {
            name,
            text,
            program,
        });
    }
    Ok(fixtures)
}

/// Runs the exact single-cut identification over a program list and returns the
/// serialised *selections proper* — the chosen cuts and their weighted savings,
/// without the `identifier_calls`/`cuts_considered` effort counters.
///
/// Effort is excluded deliberately: the search visits nodes in the canonical
/// certificate order of `ise_ir::canon`, whose tie-break mixes immediate
/// *values*. The fixture carries LLVM's signed rendering of the CRC polynomial
/// (`-306674912`) while the hand-built kernel holds the unsigned `3988292384`;
/// the two are the same 32-bit constant but different `i64`s, so the four
/// identical unrolled steps tie-break differently and the enumeration explores
/// the same cut space in a different order. The chosen instructions, their
/// merits and the savings are provably identical — and that is what the gate
/// compares.
#[must_use]
pub fn selections_json(programs: &[Program]) -> String {
    let model = DefaultCostModel::new();
    let options = CorpusOptions::new(ise_core::Constraints::default());
    let outcome = run_corpus(programs, &model, &options);
    let comparable: Vec<serde::Value> = outcome
        .selections
        .iter()
        .map(|s| {
            serde::Value::Object(vec![
                ("chosen".to_string(), serde::json::to_value(&s.chosen)),
                (
                    "total_weighted_saving".to_string(),
                    serde::json::to_value(&s.total_weighted_saving),
                ),
            ])
        })
        .collect();
    serde::json::to_string(&comparable)
}

/// The differential check: `crc32-flat.ll`, lowered and pinned to the original's
/// execution frequency, must select exactly what the hand-built `crc32_kernel`
/// selects.
///
/// # Errors
///
/// Returns a message describing the divergence (or the missing fixture).
pub fn differential_check(fixtures: &[Fixture]) -> Result<(), String> {
    let flat = fixtures
        .iter()
        .find(|f| f.name == "crc32-flat.ll")
        .ok_or("fixture crc32-flat.ll is missing")?;
    let mut lowered = flat.program.clone();
    assert_eq!(lowered.blocks().len(), 1, "crc32-flat is a single block");
    lowered.blocks_mut()[0].set_exec_count(CRC_EXEC_COUNT);
    let reference = ise_workloads::crypto::crc_program();
    let lowered_json = selections_json(std::slice::from_ref(&lowered));
    let reference_json = selections_json(std::slice::from_ref(&reference));
    if lowered_json != reference_json {
        return Err(format!(
            "crc32-flat.ll selection diverged from the hand-built crc32_kernel\n\
             lowered:   {lowered_json}\n\
             reference: {reference_json}"
        ));
    }
    Ok(())
}

/// The benchmark result, as serialised into `BENCH_frontend.json`.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct FrontendBenchReport {
    /// Number of bundled fixtures parsed.
    pub fixtures: u64,
    /// Total source lines across the fixture set (one parse pass).
    pub total_lines: u64,
    /// Parse+lower repetitions timed.
    pub parse_iterations: u64,
    /// Parsing+lowering throughput in source lines per second.
    pub parse_lines_per_sec: f64,
    /// Wall-clock of one parse+lower pass over the whole fixture set, in ms.
    pub parse_wall_ms: f64,
    /// Wall-clock of text → parse → lower → identify → select, in ms.
    pub end_to_end_wall_ms: f64,
    /// Whether the crc32-flat differential check passed.
    pub differential_ok: bool,
}

/// Times the front-end: parsing throughput and end-to-end wall-clock.
///
/// # Errors
///
/// Propagates fixture loading failures.
pub fn run(iterations: u64) -> Result<FrontendBenchReport, String> {
    let fixtures = load_fixtures()?;
    let total_lines: u64 = fixtures.iter().map(|f| f.text.lines().count() as u64).sum();

    let start = Instant::now();
    for _ in 0..iterations {
        for fixture in &fixtures {
            let name = fixture.name.trim_end_matches(".ll");
            ise_frontend::parse_and_lower(name, &fixture.text)
                .map_err(|e| format!("{}: {e}", fixture.name))?;
        }
    }
    let parse_elapsed = start.elapsed().as_secs_f64();
    let parse_wall_ms = parse_elapsed * 1_000.0 / iterations as f64;
    let parse_lines_per_sec = if parse_elapsed > 0.0 {
        (total_lines * iterations) as f64 / parse_elapsed
    } else {
        0.0
    };

    let start = Instant::now();
    let programs: Vec<Program> = fixtures.iter().map(|f| f.program.clone()).collect();
    let _ = selections_json(&programs);
    let end_to_end_wall_ms = start.elapsed().as_secs_f64() * 1_000.0 + parse_wall_ms;

    let differential_ok = differential_check(&fixtures).is_ok();
    Ok(FrontendBenchReport {
        fixtures: fixtures.len() as u64,
        total_lines,
        parse_iterations: iterations,
        parse_lines_per_sec,
        parse_wall_ms,
        end_to_end_wall_ms,
        differential_ok,
    })
}

/// Serialises a report as JSON.
#[must_use]
pub fn to_json(report: &FrontendBenchReport) -> String {
    serde::json::to_string_pretty(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_load_and_pass_the_differential_check() {
        let fixtures = load_fixtures().expect("bundled fixtures load");
        assert!(fixtures.len() >= 6);
        differential_check(&fixtures).expect("crc32-flat matches the hand-built kernel");
    }
}
