//! The template gate: cross-site instruction templates versus per-block selection.
//!
//! The template subsystem ([`ise_core::extract_templates`] /
//! [`ise_core::select_templates`]) claims that grouping isomorphic cuts across
//! blocks *and* programs lets a global area budget buy more dynamic cycle savings
//! than spending the same area on per-block cut selections — each template pays
//! its area once and covers every non-conflicting site. This experiment runs both
//! policies over a duplicate-heavy corpus at a ladder of area budgets, checks the
//! branch-and-bound selector against the brute-force oracle, and emits the
//! speedup-at-budget Pareto rows as the machine-readable `BENCH_templates.json`.
//! The `template_gate` binary exits non-zero when the selector diverges from the
//! oracle or cross-site selection loses to the per-block baseline at equal area,
//! making the claim a CI gate (like `corpus_gate`).

use std::time::Instant;

use ise_core::{
    extract_templates, run_corpus, select_templates, select_templates_budgeted,
    select_templates_exhaustive, Constraints, CorpusOptions, DriverOptions, Template,
    TemplateBudget,
};
use ise_hw::speedup::clamped_speedup;
use ise_hw::{CostModel, DefaultCostModel};
use ise_ir::Program;
use ise_workloads::corpus::{duplicate_heavy, CorpusConfig};
use ise_workloads::suite;

/// Area slack shared with the selector: a budget comparison never fails on the
/// last representable bit of an area sum.
const AREA_EPS: f64 = 1e-9;

/// Configuration of the gate experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateBenchConfig {
    /// Shape of the duplicate-heavy synthetic corpus.
    pub corpus: CorpusConfig,
    /// Seed of the synthetic corpus.
    pub seed: u64,
    /// Also append the bundled MediaBench-like kernels to the corpus.
    pub include_kernels: bool,
    /// The constraint set shared by the whole corpus.
    pub constraints: Constraints,
    /// Per-program instruction budget (`Ninstr`) of the per-block baseline.
    pub max_instructions: usize,
    /// Optional exploration budget forwarded to the exact search and to the
    /// template-selection branch-and-bound (the ladder rows use the budgeted
    /// selector; the oracle cross-check stays exact on a small head slice).
    pub exploration_budget: Option<u64>,
    /// Area budgets, as fractions of the per-block baseline's total area.
    pub budget_fractions: Vec<f64>,
    /// How many (density-leading) templates the oracle cross-check covers.
    pub oracle_templates: usize,
}

impl Default for TemplateBenchConfig {
    fn default() -> Self {
        TemplateBenchConfig {
            corpus: CorpusConfig {
                programs: 12,
                blocks_per_program: 6,
                templates: 3,
                template_nodes: 16,
                unique_per_program: 1,
            },
            seed: 0x5EED,
            include_kernels: true,
            constraints: Constraints::new(4, 2),
            max_instructions: 4,
            exploration_budget: Some(500_000),
            budget_fractions: vec![0.25, 0.5, 0.75, 1.0],
            oracle_templates: 12,
        }
    }
}

impl TemplateBenchConfig {
    /// A reduced configuration for CI smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        TemplateBenchConfig {
            corpus: CorpusConfig {
                programs: 6,
                blocks_per_program: 4,
                templates: 2,
                template_nodes: 13,
                unique_per_program: 1,
            },
            include_kernels: false,
            budget_fractions: vec![0.5, 1.0],
            oracle_templates: 10,
            ..TemplateBenchConfig::default()
        }
    }

    fn programs(&self) -> Vec<Program> {
        let mut programs = duplicate_heavy(&self.corpus, self.seed);
        if self.include_kernels {
            programs.extend(suite::mediabench_like());
        }
        programs
    }
}

/// One area-budget row of the Pareto comparison.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct BudgetRow {
    /// Budget as a fraction of the per-block baseline's total area.
    pub fraction: f64,
    /// The absolute area budget both policies spend under.
    pub area_budget: f64,
    /// Dynamic cycles saved by the cross-site template selection.
    pub template_savings: f64,
    /// Area the template selection actually spent.
    pub template_area: f64,
    /// Number of templates chosen.
    pub templates_chosen: u64,
    /// Sites (block-local cut instances) the chosen templates cover.
    pub sites_covered: u64,
    /// Whole-corpus speed-up of the template selection.
    pub template_speedup: f64,
    /// Dynamic cycles saved by the per-block baseline under the same budget.
    pub baseline_savings: f64,
    /// Area the per-block baseline actually spent.
    pub baseline_area: f64,
    /// Per-block cuts the baseline affords (each paying its own area).
    pub baseline_cuts: u64,
    /// Whole-corpus speed-up of the per-block baseline.
    pub baseline_speedup: f64,
}

/// The full gate result, as serialised into `BENCH_templates.json`.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TemplateBenchReport {
    /// Number of programs in the corpus.
    pub programs: u64,
    /// Total basic blocks across the corpus.
    pub blocks: u64,
    /// Templates extracted (isomorphism classes with positive savings).
    pub templates_extracted: u64,
    /// Total sites across all templates.
    pub sites_total: u64,
    /// Whether the branch-and-bound selector matched the brute-force oracle.
    pub oracle_identical: bool,
    /// Whether every row's template savings matched or beat the baseline.
    pub cross_site_wins: bool,
    /// Wall-clock of template extraction, milliseconds.
    pub extract_ms: f64,
    /// Wall-clock of all budget selections together, milliseconds.
    pub select_ms: f64,
    /// One row per budget fraction, ascending.
    pub rows: Vec<BudgetRow>,
}

/// The per-block baseline: every corpus-selected cut as an independent
/// instruction paying its own area, ordered best-first deterministically.
fn baseline_cuts(programs: &[Program], config: &TemplateBenchConfig) -> Vec<(f64, f64)> {
    let model = DefaultCostModel::new();
    let options = CorpusOptions::new(config.constraints)
        .with_driver(DriverOptions::new(config.max_instructions))
        .with_exploration_budget(config.exploration_budget);
    let outcome = run_corpus(programs, &model, &options);
    let mut cuts: Vec<(f64, f64)> = Vec::new();
    for (program, selection) in programs.iter().zip(&outcome.selections) {
        for chosen in &selection.chosen {
            cuts.push((
                chosen.weighted_saving(program),
                chosen.identified.evaluation.area,
            ));
        }
    }
    // Best saving first; ties by smaller area, then by discovery order (the sort
    // is stable), so the greedy spend below is deterministic.
    cuts.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.total_cmp(&b.1)));
    cuts
}

/// Greedy baseline spend: walk the best-first cut list, take whatever still fits.
fn spend_baseline(cuts: &[(f64, f64)], budget: f64) -> (f64, f64, u64) {
    let (mut savings, mut area, mut taken) = (0.0f64, 0.0f64, 0u64);
    for &(saving, cut_area) in cuts {
        if area + cut_area <= budget + AREA_EPS {
            savings += saving;
            area += cut_area;
            taken += 1;
        }
    }
    (savings, area, taken)
}

/// Whole-corpus software baseline cycles (exec-count-weighted).
fn corpus_cycles(programs: &[Program], model: &DefaultCostModel) -> f64 {
    programs
        .iter()
        .flat_map(|program| program.blocks().iter())
        .map(|dfg| {
            let per_execution: u64 = dfg
                .iter_nodes()
                .map(|(_, node)| u64::from(model.software_cycles(node)))
                .sum();
            dfg.exec_count() as f64 * per_execution as f64
        })
        .sum()
}

/// The selector-vs-oracle cross-check over the density-leading templates.
fn oracle_agrees(templates: &[Template], budgets: &[f64], cap: usize) -> bool {
    let head = &templates[..templates.len().min(cap)];
    budgets.iter().all(|&area| {
        let budget = TemplateBudget::new(area);
        let (selection, _) = select_templates(head, budget);
        selection == select_templates_exhaustive(head, budget)
    })
}

/// Runs the gate: both policies at every budget, oracle cross-check, Pareto rows.
#[must_use]
pub fn run(config: &TemplateBenchConfig) -> TemplateBenchReport {
    let programs = config.programs();
    let model = DefaultCostModel::new();
    let cuts = baseline_cuts(&programs, config);
    let full_area: f64 = cuts.iter().map(|&(_, area)| area).sum();
    let baseline_cycles = corpus_cycles(&programs, &model);

    let start = Instant::now();
    let templates = extract_templates(
        &programs,
        &model,
        config.constraints,
        config.exploration_budget,
    );
    let extract_ms = start.elapsed().as_secs_f64() * 1_000.0;
    let sites_total: u64 = templates.iter().map(|t| t.sites.len() as u64).sum();

    let start = Instant::now();
    let mut rows = Vec::with_capacity(config.budget_fractions.len());
    for &fraction in &config.budget_fractions {
        let area_budget = fraction * full_area;
        let (selection, _) = select_templates_budgeted(
            &templates,
            TemplateBudget::new(area_budget),
            config.exploration_budget,
        );
        let sites_covered: u64 = selection
            .chosen
            .iter()
            .map(|c| c.sites_taken.len() as u64)
            .sum();
        let (baseline_savings, baseline_area, baseline_taken) = spend_baseline(&cuts, area_budget);
        rows.push(BudgetRow {
            fraction,
            area_budget,
            template_savings: selection.total_savings,
            template_area: selection.total_area,
            templates_chosen: selection.chosen.len() as u64,
            sites_covered,
            template_speedup: clamped_speedup(baseline_cycles, selection.total_savings),
            baseline_savings,
            baseline_area,
            baseline_cuts: baseline_taken,
            baseline_speedup: clamped_speedup(baseline_cycles, baseline_savings),
        });
    }
    let budgets: Vec<f64> = rows.iter().map(|row| row.area_budget).collect();
    let oracle_identical = oracle_agrees(&templates, &budgets, config.oracle_templates);
    let select_ms = start.elapsed().as_secs_f64() * 1_000.0;

    let cross_site_wins = rows
        .iter()
        .all(|row| row.template_savings >= row.baseline_savings - 1e-6);
    TemplateBenchReport {
        programs: programs.len() as u64,
        blocks: programs.iter().map(|p| p.blocks().len() as u64).sum(),
        templates_extracted: templates.len() as u64,
        sites_total,
        oracle_identical,
        cross_site_wins,
        extract_ms,
        select_ms,
        rows,
    }
}

/// Coverage-regression check on the report: savings must grow (weakly) with the
/// budget, and the full-area row must cover at least one site. Site *count* is not
/// required to be monotone — a larger budget can legitimately trade many cheap sites
/// for fewer, richer ones, as long as savings never drop.
#[must_use]
pub fn coverage_is_monotonic(report: &TemplateBenchReport) -> bool {
    let monotonic = report
        .rows
        .windows(2)
        .all(|pair| pair[1].template_savings >= pair[0].template_savings - 1e-6);
    monotonic && report.rows.last().is_some_and(|row| row.sites_covered > 0)
}

/// Renders the report as the `BENCH_templates.json` payload.
#[must_use]
pub fn to_json(report: &TemplateBenchReport) -> String {
    serde::json::to_string_pretty(report)
}

/// Renders the report as a small Markdown table.
#[must_use]
pub fn markdown(report: &TemplateBenchReport) -> String {
    let mut text = String::from(
        "| budget | templates | sites | template savings | speedup | \
         baseline cuts | baseline savings | speedup |\n\
         |---:|---:|---:|---:|---:|---:|---:|---:|\n",
    );
    for row in &report.rows {
        text.push_str(&format!(
            "| {:.2} | {} | {} | {:.1} | {:.4} | {} | {:.1} | {:.4} |\n",
            row.fraction,
            row.templates_chosen,
            row.sites_covered,
            row.template_savings,
            row.template_speedup,
            row.baseline_cuts,
            row.baseline_savings,
            row.baseline_speedup,
        ));
    }
    text.push_str(&format!(
        "\n{} templates over {} sites ({} blocks), oracle identical: {}, \
         cross-site wins: {}\n",
        report.templates_extracted,
        report.sites_total,
        report.blocks,
        report.oracle_identical,
        report.cross_site_wins,
    ));
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_reports_oracle_identity_and_cross_site_wins() {
        let report = run(&TemplateBenchConfig::quick());
        assert!(report.oracle_identical, "{report:?}");
        assert!(report.cross_site_wins, "{report:?}");
        assert!(coverage_is_monotonic(&report), "{report:?}");
        assert!(report.templates_extracted > 0);
        assert!(report.sites_total >= report.templates_extracted);
        let json = to_json(&report);
        for field in [
            "\"oracle_identical\"",
            "\"cross_site_wins\"",
            "\"template_savings\"",
            "\"baseline_savings\"",
            "\"sites_covered\"",
            "\"area_budget\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(markdown(&report).contains("oracle identical: true"));
    }
}
