//! CSV and Markdown rendering of experiment rows.

use crate::fig11::Fig11Row;
use crate::fig8::Fig8Row;

/// Renders the Fig. 8 rows as CSV.
#[must_use]
pub fn fig8_csv(rows: &[Fig8Row]) -> String {
    let mut out = String::from("block,origin,nodes,cuts_considered,n2,n3,n4\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            r.block, r.origin, r.nodes, r.cuts_considered, r.n2, r.n3, r.n4
        ));
    }
    out
}

/// Renders the Fig. 8 rows as a Markdown table.
#[must_use]
pub fn fig8_markdown(rows: &[Fig8Row]) -> String {
    let mut out = String::from("| block | origin | nodes | cuts considered | N² | N³ | N⁴ |\n");
    out.push_str("|---|---|---:|---:|---:|---:|---:|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            r.block, r.origin, r.nodes, r.cuts_considered, r.n2, r.n3, r.n4
        ));
    }
    out
}

/// Renders the Fig. 11 rows as CSV.
#[must_use]
pub fn fig11_csv(rows: &[Fig11Row]) -> String {
    let mut out = String::from(
        "benchmark,nin,nout,algorithm,speedup,improvement_percent,instructions,area,largest_instruction\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.4},{:.2},{},{:.3},{}\n",
            r.benchmark,
            r.max_inputs,
            r.max_outputs,
            r.algorithm,
            r.speedup,
            r.improvement_percent,
            r.instructions,
            r.area,
            r.largest_instruction
        ));
    }
    out
}

/// Renders the Fig. 11 rows as a Markdown table grouped the way the figure is laid out:
/// one line per (benchmark, constraint pair), one column per algorithm.
#[must_use]
pub fn fig11_markdown(rows: &[Fig11Row]) -> String {
    let mut keys: Vec<(String, usize, usize)> = rows
        .iter()
        .map(|r| (r.benchmark.clone(), r.max_inputs, r.max_outputs))
        .collect();
    keys.sort();
    keys.dedup();
    let algorithms = ["Optimal", "Iterative", "Clubbing", "MaxMISO"];
    let mut out = String::from(
        "| benchmark | Nin | Nout | Optimal | Iterative | Clubbing | MaxMISO |\n|---|---:|---:|---:|---:|---:|---:|\n",
    );
    for (benchmark, nin, nout) in keys {
        out.push_str(&format!("| {benchmark} | {nin} | {nout} |"));
        for algorithm in algorithms {
            let speedup = rows
                .iter()
                .find(|r| {
                    r.benchmark == benchmark
                        && r.max_inputs == nin
                        && r.max_outputs == nout
                        && r.algorithm == algorithm
                })
                .map(|r| r.speedup);
            match speedup {
                Some(s) => out.push_str(&format!(" {s:.3} |")),
                None => out.push_str(" – |"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig8_row() -> Fig8Row {
        Fig8Row {
            block: "bb".into(),
            origin: "kernel".into(),
            nodes: 10,
            cuts_considered: 250,
            n2: 100,
            n3: 1000,
            n4: 10_000,
        }
    }

    fn fig11_row(algorithm: &str, speedup: f64) -> Fig11Row {
        Fig11Row {
            benchmark: "gsm".into(),
            max_inputs: 4,
            max_outputs: 2,
            algorithm: algorithm.into(),
            speedup,
            improvement_percent: (speedup - 1.0) * 100.0,
            instructions: 3,
            area: 1.25,
            largest_instruction: 9,
        }
    }

    #[test]
    fn csv_has_a_header_and_one_line_per_row() {
        let csv = fig8_csv(&[fig8_row(), fig8_row()]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("block,origin"));
        let csv = fig11_csv(&[fig11_row("Iterative", 1.4)]);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("1.4000"));
    }

    #[test]
    fn markdown_tables_are_well_formed() {
        let md = fig8_markdown(&[fig8_row()]);
        assert!(md.contains("| bb | kernel | 10 | 250 |"));
        let md = fig11_markdown(&[
            fig11_row("Iterative", 1.4),
            fig11_row("Clubbing", 1.1),
            fig11_row("MaxMISO", 1.2),
            fig11_row("Optimal", 1.4),
        ]);
        assert!(md.contains("| gsm | 4 | 2 | 1.400 | 1.400 | 1.100 | 1.200 |"));
    }
}
