//! The template gate: asserts that the cross-site template selector matches the
//! brute-force oracle and that cross-site selection matches or beats the per-block
//! baseline at equal area on a duplicate-heavy corpus, and writes the
//! machine-readable `BENCH_templates.json`.
//!
//! Usage: `cargo run --release -p ise-bench --bin template_gate [--quick] [output-dir]`
//!
//! Exit codes: `0` oracle-identical, cross-site wins and monotone coverage, `3` the
//! selector diverged from the oracle, lost to the baseline at some budget, or site
//! coverage regressed — CI runs this like `corpus_gate`.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use ise_bench::template_bench::{self, TemplateBenchConfig};

fn main() -> ExitCode {
    let mut quick = false;
    let mut output_dir = PathBuf::from("results");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if arg.starts_with('-') {
            eprintln!("error: unknown flag {arg:?}\nusage: template_gate [--quick] [output-dir]");
            return ExitCode::from(2);
        } else {
            output_dir = PathBuf::from(arg);
        }
    }
    let config = if quick {
        TemplateBenchConfig::quick()
    } else {
        TemplateBenchConfig::default()
    };
    let report = template_bench::run(&config);

    println!("# Template gate — cross-site templates vs per-block selection at equal area");
    println!();
    print!("{}", template_bench::markdown(&report));

    if let Err(error) = fs::create_dir_all(&output_dir) {
        eprintln!("warning: cannot create {}: {error}", output_dir.display());
    }
    let path = output_dir.join("BENCH_templates.json");
    match fs::write(&path, template_bench::to_json(&report) + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(error) => eprintln!("warning: cannot write {}: {error}", path.display()),
    }

    if !report.oracle_identical {
        eprintln!("error: the branch-and-bound selector diverged from the brute-force oracle");
        return ExitCode::from(3);
    }
    if !report.cross_site_wins {
        eprintln!(
            "error: cross-site template selection lost to the per-block baseline at equal \
             area on the duplicate-heavy corpus"
        );
        return ExitCode::from(3);
    }
    if !template_bench::coverage_is_monotonic(&report) {
        eprintln!("error: site coverage regressed across the budget ladder");
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
