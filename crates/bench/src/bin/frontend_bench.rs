//! The LLVM front-end benchmark: parsing throughput (lines/sec) over the bundled
//! fixtures and the end-to-end text-to-selection wall-clock, emitted as the
//! machine-readable `BENCH_frontend.json`.
//!
//! Usage: `cargo run --release -p ise-bench --bin frontend_bench [--quick] [output-dir]`
//!
//! Exit codes: `0` success (report written), `3` fixtures failed to load or the
//! differential check failed.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use ise_bench::frontend_bench;

fn main() -> ExitCode {
    let mut iterations = 200u64;
    let mut output_dir = PathBuf::from("results");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            iterations = 10;
        } else if arg.starts_with('-') {
            eprintln!("error: unknown flag {arg:?}\nusage: frontend_bench [--quick] [output-dir]");
            return ExitCode::from(2);
        } else {
            output_dir = PathBuf::from(arg);
        }
    }
    let report = match frontend_bench::run(iterations) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("error: {error}");
            return ExitCode::from(3);
        }
    };

    println!("# Front-end benchmark — parse throughput and end-to-end wall-clock");
    println!();
    println!(
        "{} fixtures, {} source lines; {:.0} lines/sec over {} iterations",
        report.fixtures, report.total_lines, report.parse_lines_per_sec, report.parse_iterations
    );
    println!(
        "parse+lower pass: {:.3} ms; text → selection: {:.3} ms",
        report.parse_wall_ms, report.end_to_end_wall_ms
    );

    if let Err(error) = fs::create_dir_all(&output_dir) {
        eprintln!("warning: cannot create {}: {error}", output_dir.display());
    }
    let path = output_dir.join("BENCH_frontend.json");
    match fs::write(&path, frontend_bench::to_json(&report) + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(error) => eprintln!("warning: cannot write {}: {error}", path.display()),
    }

    if !report.differential_ok {
        eprintln!("error: crc32-flat.ll selection diverged from the hand-built kernel");
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
