//! Regenerates Fig. 11 of the paper: estimated speed-up of Optimal, Iterative, Clubbing
//! and MaxMISO on the MediaBench-like trio for a sweep of port constraints, with up to 16
//! special instructions. All algorithms are driven through the engine registry.
//!
//! Usage: `cargo run --release -p ise-bench --bin fig11 [--quick] [--direct] [output-dir]`
//!
//! `--quick` runs the reduced smoke configuration (two constraint pairs, the GSM and
//! G.721 benchmarks only). The sweep is answered from a memoised cut pool by default;
//! `--direct` forces the reference per-pair searches (the rows — and the CSV — are
//! byte-identical in both modes, which `sweep_gate` asserts in CI).

use std::fs;
use std::path::PathBuf;

use ise_bench::fig11::{self, Fig11Config};
use ise_bench::report;
use ise_workloads::suite;

fn main() {
    let mut quick = false;
    let mut direct = false;
    let mut output_dir = PathBuf::from("results");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--direct" {
            direct = true;
        } else if arg.starts_with('-') {
            eprintln!(
                "error: unknown flag {arg:?}\nusage: fig11 [--quick] [--direct] [output-dir]"
            );
            std::process::exit(2);
        } else {
            output_dir = PathBuf::from(arg);
        }
    }
    let config = Fig11Config {
        direct,
        ..if quick {
            Fig11Config::quick()
        } else {
            Fig11Config::default()
        }
    };
    let benchmarks: Vec<_> = if quick {
        suite::fig11_benchmarks()
            .into_iter()
            .filter(|p| p.name() != "adpcmdecode")
            .collect()
    } else {
        suite::fig11_benchmarks()
    };
    let rows = fig11::run(&benchmarks, &config);

    println!(
        "# Fig. 11 — estimated speed-up, up to {} special instructions",
        config.max_instructions
    );
    println!();
    print!("{}", report::fig11_markdown(&rows));
    println!();
    let checks = fig11::shape_checks(&rows);
    println!(
        "exact algorithms dominate baselines: {}",
        checks.exact_dominates_baselines
    );
    println!(
        "gap grows with port budget:          {}",
        checks.gap_grows_with_ports
    );
    println!(
        "Optimal ≈ Iterative:                 {}",
        checks.optimal_close_to_iterative
    );
    let max_area = rows.iter().map(|r| r.area).fold(0.0f64, f64::max);
    println!("largest total datapath area:         {max_area:.2} MAC-equivalents");

    if let Err(error) = fs::create_dir_all(&output_dir) {
        eprintln!("warning: cannot create {}: {error}", output_dir.display());
        return;
    }
    let csv_path = output_dir.join("fig11.csv");
    match fs::write(&csv_path, report::fig11_csv(&rows)) {
        Ok(()) => println!("wrote {}", csv_path.display()),
        Err(error) => eprintln!("warning: cannot write {}: {error}", csv_path.display()),
    }
}
