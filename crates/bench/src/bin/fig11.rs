//! Regenerates Fig. 11 of the paper: estimated speed-up of Optimal, Iterative, Clubbing
//! and MaxMISO on the MediaBench-like trio for a sweep of port constraints, with up to 16
//! special instructions.
//!
//! Usage: `cargo run --release -p ise-bench --bin fig11 [output-dir]`

use std::fs;
use std::path::PathBuf;

use ise_bench::fig11::{self, Fig11Config};
use ise_bench::report;
use ise_workloads::suite;

fn main() {
    let output_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    let config = Fig11Config::default();
    let benchmarks = suite::fig11_benchmarks();
    let rows = fig11::run(&benchmarks, &config);

    println!(
        "# Fig. 11 — estimated speed-up, up to {} special instructions",
        config.max_instructions
    );
    println!();
    print!("{}", report::fig11_markdown(&rows));
    println!();
    let checks = fig11::shape_checks(&rows);
    println!("exact algorithms dominate baselines: {}", checks.exact_dominates_baselines);
    println!("gap grows with port budget:          {}", checks.gap_grows_with_ports);
    println!("Optimal ≈ Iterative:                 {}", checks.optimal_close_to_iterative);
    let max_area = rows.iter().map(|r| r.area).fold(0.0f64, f64::max);
    println!("largest total datapath area:         {max_area:.2} MAC-equivalents");

    if let Err(error) = fs::create_dir_all(&output_dir) {
        eprintln!("warning: cannot create {}: {error}", output_dir.display());
        return;
    }
    let csv_path = output_dir.join("fig11.csv");
    match fs::write(&csv_path, report::fig11_csv(&rows)) {
        Ok(()) => println!("wrote {}", csv_path.display()),
        Err(error) => eprintln!("warning: cannot write {}: {error}", csv_path.display()),
    }
}
