//! The sweep determinism gate: asserts that the pool-backed Fig. 11 sweep is
//! byte-identical to the direct per-pair searches while performing strictly fewer
//! search-tree enumerations, and writes the machine-readable `BENCH_sweep.json`.
//!
//! Usage: `cargo run --release -p ise-bench --bin sweep_gate [--quick] [output-dir]`
//!
//! Exit codes: `0` identical and fewer invocations, `3` the two modes diverged (or the
//! pool failed to save work) — CI runs this like the `scaling` sequential/parallel gate.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use ise_bench::sweep_bench::{self, SweepBenchConfig};

fn main() -> ExitCode {
    let mut quick = false;
    let mut output_dir = PathBuf::from("results");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if arg.starts_with('-') {
            eprintln!("error: unknown flag {arg:?}\nusage: sweep_gate [--quick] [output-dir]");
            return ExitCode::from(2);
        } else {
            output_dir = PathBuf::from(arg);
        }
    }
    let config = if quick {
        SweepBenchConfig::quick()
    } else {
        SweepBenchConfig::default()
    };
    let report = sweep_bench::run(&config);

    println!("# Sweep gate — pool-backed vs direct Fig. 11 sweep");
    println!();
    print!("{}", sweep_bench::markdown(&report));

    if let Err(error) = fs::create_dir_all(&output_dir) {
        eprintln!("warning: cannot create {}: {error}", output_dir.display());
    }
    let path = output_dir.join("BENCH_sweep.json");
    match fs::write(&path, sweep_bench::to_json(&report) + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(error) => eprintln!("warning: cannot write {}: {error}", path.display()),
    }

    if !report.identical {
        eprintln!("error: pool-backed sweep diverged from the direct per-pair runs");
        return ExitCode::from(3);
    }
    if !report.fewer_invocations {
        eprintln!("error: the cut pool performed no fewer enumerations than direct mode");
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
