//! Intra-block scaling experiment: sequential versus subtree-parallel exact search on
//! wide single blocks, with a hard determinism gate.
//!
//! Usage: `cargo run --release -p ise-bench --bin scaling [--quick] [output-dir]`
//!
//! `--quick` runs the reduced smoke configuration (smaller blocks). Prints a Markdown
//! table to stdout and writes the machine-readable `BENCH_search.json` into the output
//! directory (default `results/`). Exits with code **3** when any parallel search
//! output diverges from its sequential twin — CI runs this as the determinism gate.

use std::fs;
use std::path::PathBuf;

use ise_bench::scaling::{self, ScalingConfig};

fn main() {
    let mut quick = false;
    let mut output_dir = PathBuf::from("results");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if arg.starts_with('-') {
            eprintln!("error: unknown flag {arg:?}\nusage: scaling [--quick] [output-dir]");
            std::process::exit(2);
        } else {
            output_dir = PathBuf::from(arg);
        }
    }
    let config = if quick {
        ScalingConfig::quick()
    } else {
        ScalingConfig::default()
    };
    let report = scaling::run(&config);

    println!(
        "# Intra-block scaling — single-cut search, {} threads, split depth {}",
        report.threads, config.split_levels
    );
    println!();
    print!("{}", scaling::markdown(&report));
    println!();
    println!(
        "sequential == parallel for every client: {}",
        report.all_identical
    );

    if let Err(error) = fs::create_dir_all(&output_dir) {
        eprintln!("warning: cannot create {}: {error}", output_dir.display());
    } else {
        let json_path = output_dir.join("BENCH_search.json");
        match fs::write(&json_path, scaling::to_json(&report) + "\n") {
            Ok(()) => println!("wrote {}", json_path.display()),
            Err(error) => eprintln!("warning: cannot write {}: {error}", json_path.display()),
        }
    }

    if !report.all_identical {
        eprintln!("error: parallel search output diverged from the sequential search");
        std::process::exit(3);
    }
}
