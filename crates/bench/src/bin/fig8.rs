//! Regenerates Fig. 8 of the paper: cuts considered by the identification algorithm
//! versus basic-block size, with `Nout = 2` and unbounded `Nin`.
//!
//! Usage: `cargo run --release -p ise-bench --bin fig8 [--quick] [output-dir]`
//!
//! `--quick` runs the reduced smoke configuration (fewer, smaller random blocks).
//! Prints a Markdown table to stdout and writes `fig8.csv` into the output directory
//! (default `results/`).

use std::fs;
use std::path::PathBuf;

use ise_bench::fig8::{self, Fig8Config};
use ise_bench::report;

fn main() {
    let mut quick = false;
    let mut output_dir = PathBuf::from("results");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if arg.starts_with('-') {
            eprintln!("error: unknown flag {arg:?}\nusage: fig8 [--quick] [output-dir]");
            std::process::exit(2);
        } else {
            output_dir = PathBuf::from(arg);
        }
    }
    let config = if quick {
        Fig8Config::quick()
    } else {
        Fig8Config::default()
    };
    let rows = fig8::run(&config);

    println!(
        "# Fig. 8 — search-space size (identifier = {}, Nout = {})",
        config.identifier, config.max_outputs
    );
    println!();
    print!("{}", report::fig8_markdown(&rows));
    println!();
    println!(
        "within polynomial (N^4) envelope: {}",
        fig8::within_polynomial_envelope(&rows)
    );

    if let Err(error) = fs::create_dir_all(&output_dir) {
        eprintln!("warning: cannot create {}: {error}", output_dir.display());
        return;
    }
    let csv_path = output_dir.join("fig8.csv");
    match fs::write(&csv_path, report::fig8_csv(&rows)) {
        Ok(()) => println!("wrote {}", csv_path.display()),
        Err(error) => eprintln!("warning: cannot write {}: {error}", csv_path.display()),
    }
}
