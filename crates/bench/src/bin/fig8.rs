//! Regenerates Fig. 8 of the paper: cuts considered by the identification algorithm
//! versus basic-block size, with `Nout = 2` and unbounded `Nin`.
//!
//! Usage: `cargo run --release -p ise-bench --bin fig8 [output-dir]`
//!
//! Prints a Markdown table to stdout and writes `fig8.csv` into the output directory
//! (default `results/`).

use std::fs;
use std::path::PathBuf;

use ise_bench::fig8::{self, Fig8Config};
use ise_bench::report;

fn main() {
    let output_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    let config = Fig8Config::default();
    let rows = fig8::run(&config);

    println!("# Fig. 8 — search-space size (Nout = {})", config.max_outputs);
    println!();
    print!("{}", report::fig8_markdown(&rows));
    println!();
    println!(
        "within polynomial (N^4) envelope: {}",
        fig8::within_polynomial_envelope(&rows)
    );

    if let Err(error) = fs::create_dir_all(&output_dir) {
        eprintln!("warning: cannot create {}: {error}", output_dir.display());
        return;
    }
    let csv_path = output_dir.join("fig8.csv");
    match fs::write(&csv_path, report::fig8_csv(&rows)) {
        Ok(()) => println!("wrote {}", csv_path.display()),
        Err(error) => eprintln!("warning: cannot write {}: {error}", csv_path.display()),
    }
}
