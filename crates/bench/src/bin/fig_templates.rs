//! Prints the cross-site template Pareto table: speed-up at a ladder of area
//! budgets, cross-site templates versus the per-block baseline, and writes
//! `fig_templates.csv` into the output directory.
//!
//! Usage: `cargo run --release -p ise-bench --bin fig_templates [--quick] [output-dir]`

use std::fs;
use std::path::PathBuf;

use ise_bench::template_bench::{self, TemplateBenchConfig};

fn main() {
    let mut quick = false;
    let mut output_dir = PathBuf::from("results");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if arg.starts_with('-') {
            eprintln!("error: unknown flag {arg:?}\nusage: fig_templates [--quick] [output-dir]");
            std::process::exit(2);
        } else {
            output_dir = PathBuf::from(arg);
        }
    }
    let config = if quick {
        TemplateBenchConfig::quick()
    } else {
        TemplateBenchConfig::default()
    };
    let report = template_bench::run(&config);

    println!("# Cross-site templates — speed-up at equal area budgets");
    println!();
    print!("{}", template_bench::markdown(&report));

    if let Err(error) = fs::create_dir_all(&output_dir) {
        eprintln!("warning: cannot create {}: {error}", output_dir.display());
        return;
    }
    let mut csv = String::from(
        "fraction,area_budget,templates_chosen,sites_covered,template_savings,\
         template_speedup,baseline_cuts,baseline_savings,baseline_speedup\n",
    );
    for row in &report.rows {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            row.fraction,
            row.area_budget,
            row.templates_chosen,
            row.sites_covered,
            row.template_savings,
            row.template_speedup,
            row.baseline_cuts,
            row.baseline_savings,
            row.baseline_speedup,
        ));
    }
    let csv_path = output_dir.join("fig_templates.csv");
    match fs::write(&csv_path, csv) {
        Ok(()) => println!("wrote {}", csv_path.display()),
        Err(error) => eprintln!("warning: cannot write {}: {error}", csv_path.display()),
    }
}
