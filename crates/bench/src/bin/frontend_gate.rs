//! The LLVM front-end fixture gate: parses every bundled `.ll` fixture, runs the
//! exact single-cut identification over the lowered corpus, and differentially
//! checks `crc32-flat.ll` against the hand-built `crc32_kernel`.
//!
//! Usage: `cargo run --release -p ise-bench --bin frontend_gate`
//!
//! Exit codes: `0` every fixture parses and the selections match, `3` a fixture
//! failed to parse/lower or the differential selection diverged — CI runs this
//! like `sweep_gate` and `corpus_gate`.

use std::process::ExitCode;

use ise_bench::frontend_bench::{self, Fixture};

fn main() -> ExitCode {
    let fixtures: Vec<Fixture> = match frontend_bench::load_fixtures() {
        Ok(fixtures) => fixtures,
        Err(error) => {
            eprintln!("error: {error}");
            return ExitCode::from(3);
        }
    };
    println!("# Front-end gate — {} bundled fixtures", fixtures.len());
    for fixture in &fixtures {
        let blocks = fixture.program.blocks().len();
        let nodes: usize = fixture
            .program
            .blocks()
            .iter()
            .map(ise_ir::Dfg::node_count)
            .sum();
        println!("  {}: {blocks} blocks, {nodes} nodes", fixture.name);
    }
    if fixtures.len() < 6 {
        eprintln!(
            "error: expected at least 6 bundled fixtures, found {}",
            fixtures.len()
        );
        return ExitCode::from(3);
    }

    // Identification must complete over the whole lowered corpus.
    let programs: Vec<ise_ir::Program> = fixtures.iter().map(|f| f.program.clone()).collect();
    let selections = frontend_bench::selections_json(&programs);
    println!("selections: {} bytes of JSON", selections.len());

    if let Err(error) = frontend_bench::differential_check(&fixtures) {
        eprintln!("error: {error}");
        return ExitCode::from(3);
    }
    println!("crc32-flat.ll differential check: selections identical");
    ExitCode::SUCCESS
}
