//! The serve-mode gate: asserts that every served response is byte-identical to
//! the one-shot path, that the warm cross-request cache answers a
//! duplicate-heavy corpus at least 2x faster than cold dispatch without paying
//! a single fill, and that a snapshot round trip warm-starts identically; then
//! writes the machine-readable `BENCH_serve.json`.
//!
//! Usage: `cargo run --release -p ise-bench --bin serve_gate [--quick] [output-dir]`
//!
//! Exit codes: `0` all gates hold, `3` identity, the warm pay-off or persistence
//! failed — CI runs this like `corpus_gate`.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use ise_bench::serve_bench::{self, ServeBenchConfig};

fn main() -> ExitCode {
    let mut quick = false;
    let mut output_dir = PathBuf::from("results");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if arg.starts_with('-') {
            eprintln!("error: unknown flag {arg:?}\nusage: serve_gate [--quick] [output-dir]");
            return ExitCode::from(2);
        } else {
            output_dir = PathBuf::from(arg);
        }
    }
    let config = if quick {
        ServeBenchConfig::quick()
    } else {
        ServeBenchConfig::default()
    };
    let report = serve_bench::run(&config);

    println!("# Serve gate — warm cross-request cache vs cold dispatch");
    println!();
    print!("{}", serve_bench::markdown(&report));

    if let Err(error) = fs::create_dir_all(&output_dir) {
        eprintln!("warning: cannot create {}: {error}", output_dir.display());
    }
    let path = output_dir.join("BENCH_serve.json");
    match fs::write(&path, serve_bench::to_json(&report) + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(error) => eprintln!("warning: cannot write {}: {error}", path.display()),
    }

    if !report.identical {
        eprintln!("error: a served response diverged from the one-shot reference");
        return ExitCode::from(3);
    }
    if !report.snapshot_roundtrip_identical {
        eprintln!("error: the snapshot round trip did not warm-start byte-identically");
        return ExitCode::from(3);
    }
    if report.warm_fills > 0 || report.snapshot_warm_fills > 0 {
        eprintln!(
            "error: the warm phases paid {} + {} fills (the gate requires 0)",
            report.warm_fills, report.snapshot_warm_fills
        );
        return ExitCode::from(3);
    }
    if report.warm_speedup < 2.0 {
        eprintln!(
            "error: the warm cache served only {:.2}x the cold throughput \
             (the gate requires >= 2x)",
            report.warm_speedup
        );
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
