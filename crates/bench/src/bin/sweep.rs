//! Full experiment sweep: runs the Fig. 11 comparison over *every* bundled application
//! (not only the trio of the figure) and a finer constraint grid, in parallel, writing
//! one CSV per application.
//!
//! The applications are fanned out with `rayon`; the per-block driver inside each
//! application run is kept sequential so the machine is not oversubscribed.
//!
//! Usage: `cargo run --release -p ise-bench --bin sweep [--direct] [output-dir]`
//!
//! The per-application sweeps are answered from memoised cut pools by default;
//! `--direct` forces the reference per-pair searches (byte-identical CSVs either way).

use std::fs;
use std::path::PathBuf;

use ise_bench::fig11::{self, Fig11Config};
use ise_bench::report;
use ise_core::Constraints;
use ise_workloads::suite;
use rayon::prelude::*;

fn main() {
    let mut direct = false;
    let mut output_dir = PathBuf::from("results");
    for arg in std::env::args().skip(1) {
        if arg == "--direct" {
            direct = true;
        } else if arg.starts_with('-') {
            eprintln!("error: unknown flag {arg:?}\nusage: sweep [--direct] [output-dir]");
            std::process::exit(2);
        } else {
            output_dir = PathBuf::from(arg);
        }
    }
    let config = Fig11Config {
        constraints: vec![
            Constraints::new(2, 1),
            Constraints::new(3, 1),
            Constraints::new(4, 1),
            Constraints::new(4, 2),
            Constraints::new(4, 3),
            Constraints::new(6, 3),
            Constraints::new(8, 4),
        ],
        max_instructions: 16,
        parallel: false,
        direct,
        ..Fig11Config::default()
    };
    let benchmarks = suite::mediabench_like();

    // One parallel task per application; each application's sweep is independent.
    let results: Vec<(String, Vec<fig11::Fig11Row>)> = benchmarks
        .par_iter()
        .map(|program| {
            let rows = fig11::run(std::slice::from_ref(program), &config);
            (program.name().to_string(), rows)
        })
        .collect();

    if let Err(error) = fs::create_dir_all(&output_dir) {
        eprintln!("warning: cannot create {}: {error}", output_dir.display());
    }
    let mut all_rows = Vec::new();
    for (name, rows) in results {
        println!("## {name}");
        print!("{}", report::fig11_markdown(&rows));
        println!();
        let path = output_dir.join(format!("sweep_{name}.csv"));
        if let Err(error) = fs::write(&path, report::fig11_csv(&rows)) {
            eprintln!("warning: cannot write {}: {error}", path.display());
        }
        all_rows.extend(rows);
    }
    let checks = fig11::shape_checks(&all_rows);
    println!(
        "exact algorithms dominate baselines: {}",
        checks.exact_dominates_baselines
    );
    let path = output_dir.join("sweep_all.csv");
    match fs::write(&path, report::fig11_csv(&all_rows)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(error) => eprintln!("warning: cannot write {}: {error}", path.display()),
    }
}
