//! The corpus dedup gate: asserts that structural cross-program deduplication is
//! byte-identical to the per-program reference runs while enumerating at least 2x
//! fewer cuts on a duplicate-heavy corpus, and writes the machine-readable
//! `BENCH_corpus.json`.
//!
//! Usage: `cargo run --release -p ise-bench --bin corpus_gate [--quick] [output-dir]`
//!
//! Exit codes: `0` identical and >= 2x enumeration reduction, `3` the modes diverged
//! or dedup failed to pay — CI runs this like `sweep_gate`.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use ise_bench::corpus_bench::{self, CorpusBenchConfig};

fn main() -> ExitCode {
    let mut quick = false;
    let mut output_dir = PathBuf::from("results");
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if arg.starts_with('-') {
            eprintln!("error: unknown flag {arg:?}\nusage: corpus_gate [--quick] [output-dir]");
            return ExitCode::from(2);
        } else {
            output_dir = PathBuf::from(arg);
        }
    }
    let config = if quick {
        CorpusBenchConfig::quick()
    } else {
        CorpusBenchConfig::default()
    };
    let report = corpus_bench::run(&config);

    println!("# Corpus gate — structural dedup vs per-program reference runs");
    println!();
    print!("{}", corpus_bench::markdown(&report));

    if let Err(error) = fs::create_dir_all(&output_dir) {
        eprintln!("warning: cannot create {}: {error}", output_dir.display());
    }
    let path = output_dir.join("BENCH_corpus.json");
    match fs::write(&path, corpus_bench::to_json(&report) + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(error) => eprintln!("warning: cannot write {}: {error}", path.display()),
    }

    if !report.identical {
        eprintln!("error: deduplicated corpus run diverged from the per-program reference");
        return ExitCode::from(3);
    }
    if report.cuts_reduction < 2.0 {
        eprintln!(
            "error: dedup reduced enumeration only {:.2}x on the duplicate-heavy corpus \
             (the gate requires >= 2x)",
            report.cuts_reduction
        );
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
