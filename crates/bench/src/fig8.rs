//! Fig. 8 — cuts considered by the identification algorithm versus block size.
//!
//! The experiment is driven through the engine registry: any registered
//! [`Identifier`] can be measured by name (the paper's
//! figure uses the exact `"single-cut"` search), and the per-block measurements are
//! fanned out in parallel with `rayon`.

use ise_baselines::full_registry;
use ise_core::engine::{Identifier, IdentifierConfig};
use ise_core::Constraints;
use ise_hw::DefaultCostModel;
use ise_ir::Dfg;
use ise_workloads::{random, suite};
use rayon::prelude::*;

/// One point of the Fig. 8 scatter plot.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Fig8Row {
    /// Name of the basic block.
    pub block: String,
    /// Origin of the block (`"kernel"` for bundled benchmarks, `"random"` for synthetic).
    pub origin: String,
    /// Number of operation nodes in the block.
    pub nodes: usize,
    /// Cuts considered by the search.
    pub cuts_considered: u64,
    /// Reference values `N²`, `N³` and `N⁴` for the guide lines of the figure.
    pub n2: u64,
    /// `N³` guide line.
    pub n3: u64,
    /// `N⁴` guide line.
    pub n4: u64,
}

/// Configuration of the Fig. 8 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Config {
    /// Registry name of the identification algorithm to measure.
    pub identifier: String,
    /// Output-port constraint (the paper uses `Nout = 2`).
    pub max_outputs: usize,
    /// Sizes of the synthetic random blocks added to the kernel blocks.
    pub random_sizes: Vec<usize>,
    /// Seed of the random-graph generator.
    pub seed: u64,
    /// Optional exploration budget guarding the largest blocks.
    pub exploration_budget: Option<u64>,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            identifier: "single-cut".to_string(),
            max_outputs: 2,
            random_sizes: vec![2, 4, 6, 8, 12, 16, 20, 25, 30, 40, 50, 60, 80, 100],
            seed: 20030610,
            exploration_budget: Some(crate::DEFAULT_EXPLORATION_BUDGET),
        }
    }
}

impl Fig8Config {
    /// A reduced configuration for smoke runs: fewer and smaller random blocks.
    #[must_use]
    pub fn quick() -> Self {
        Fig8Config {
            random_sizes: vec![4, 8, 16, 24],
            ..Fig8Config::default()
        }
    }
}

/// Instantiates the measured identifier from the registry.
///
/// # Panics
///
/// Panics if `config.identifier` is not a registered algorithm name.
#[must_use]
fn identifier_for(config: &Fig8Config) -> Box<dyn Identifier> {
    let engine_config =
        IdentifierConfig::default().with_exploration_budget(config.exploration_budget);
    full_registry()
        .create_configured(&config.identifier, &engine_config)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Counts the cuts considered by the exact single-cut search on one block with
/// `Nout = max_outputs` and an effectively unbounded `Nin` (the configuration of
/// Fig. 8). For other algorithms, run the full experiment with
/// [`Fig8Config::identifier`] set to the registry name.
#[must_use]
pub fn cuts_considered(dfg: &Dfg, max_outputs: usize, budget: Option<u64>) -> u64 {
    let model = DefaultCostModel::new();
    let constraints = Constraints::new(usize::MAX >> 1, max_outputs);
    ise_core::engine::SingleCut::new()
        .with_exploration_budget(budget)
        .identify(dfg, &constraints, &model)
        .stats
        .cuts_considered
}

/// Runs the full experiment: every basic block of the bundled suite plus a random-graph
/// size sweep, with the per-block searches fanned out in parallel.
#[must_use]
pub fn run(config: &Fig8Config) -> Vec<Fig8Row> {
    let identifier = identifier_for(config);
    let model = DefaultCostModel::new();
    let constraints = Constraints::new(usize::MAX >> 1, config.max_outputs);

    let mut blocks: Vec<(Dfg, &'static str)> = Vec::new();
    for program in suite::mediabench_like() {
        for block in program.blocks() {
            if block.node_count() >= 2 {
                blocks.push((block.clone(), "kernel"));
            }
        }
    }
    for dfg in random::size_sweep(&config.random_sizes, config.seed) {
        blocks.push((dfg, "random"));
    }

    let mut rows: Vec<Fig8Row> = blocks
        .par_iter()
        .map(|(dfg, origin)| {
            let n = dfg.node_count() as u64;
            let outcome = identifier.identify(dfg, &constraints, &model);
            Fig8Row {
                block: dfg.name().to_string(),
                origin: (*origin).to_string(),
                nodes: dfg.node_count(),
                cuts_considered: outcome.stats.cuts_considered,
                n2: n.saturating_pow(2),
                n3: n.saturating_pow(3),
                n4: n.saturating_pow(4),
            }
        })
        .collect();
    rows.sort_by_key(|r| r.nodes);
    rows
}

/// Checks the qualitative claim of Fig. 8 on a set of rows: the number of cuts considered
/// stays at or below the `N⁴` guide line for every practical block (it may exceed `N²`).
#[must_use]
pub fn within_polynomial_envelope(rows: &[Fig8Row]) -> bool {
    rows.iter()
        .filter(|r| r.nodes >= 4)
        .all(|r| r.cuts_considered <= r.n4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_workloads::adpcm;

    #[test]
    fn kernel_blocks_stay_within_the_polynomial_envelope() {
        let config = Fig8Config::quick();
        let rows = run(&config);
        assert!(rows.len() >= 10);
        assert!(within_polynomial_envelope(&rows));
        // Rows are sorted by block size for plotting.
        assert!(rows.windows(2).all(|w| w[0].nodes <= w[1].nodes));
    }

    #[test]
    fn pruning_beats_exhaustive_enumeration() {
        let block = adpcm::decode_kernel();
        let considered = cuts_considered(&block, 2, None);
        let exhaustive = 1u64 << block.node_count().min(63);
        assert!(
            considered < exhaustive / 4,
            "considered {considered} of {exhaustive}"
        );
        assert!(considered > block.node_count() as u64);
    }

    #[test]
    fn tighter_output_ports_consider_fewer_cuts() {
        let block = adpcm::decode_kernel();
        let one = cuts_considered(&block, 1, None);
        let three = cuts_considered(&block, 3, None);
        assert!(one <= three);
    }

    #[test]
    fn the_experiment_is_identifier_agnostic() {
        // Measuring a baseline through the same harness works and considers far fewer
        // candidates than the exact search.
        let exact = run(&Fig8Config::quick());
        let clubbing = run(&Fig8Config {
            identifier: "clubbing".to_string(),
            ..Fig8Config::quick()
        });
        assert_eq!(exact.len(), clubbing.len());
        let total_exact: u64 = exact.iter().map(|r| r.cuts_considered).sum();
        let total_clubbing: u64 = clubbing.iter().map(|r| r.cuts_considered).sum();
        assert!(total_clubbing < total_exact);
    }

    #[test]
    #[should_panic(expected = "unknown identification algorithm")]
    fn unknown_identifier_names_are_rejected() {
        let config = Fig8Config {
            identifier: "no-such-algorithm".to_string(),
            random_sizes: vec![4],
            ..Fig8Config::default()
        };
        let _ = run(&config);
    }
}
