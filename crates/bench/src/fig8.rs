//! Fig. 8 — cuts considered by the identification algorithm versus block size.

use ise_core::{Constraints, SingleCutSearch};
use ise_hw::DefaultCostModel;
use ise_ir::Dfg;
use ise_workloads::{random, suite};

/// One point of the Fig. 8 scatter plot.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Fig8Row {
    /// Name of the basic block.
    pub block: String,
    /// Origin of the block (`"kernel"` for bundled benchmarks, `"random"` for synthetic).
    pub origin: String,
    /// Number of operation nodes in the block.
    pub nodes: usize,
    /// Cuts considered by the search.
    pub cuts_considered: u64,
    /// Reference values `N²`, `N³` and `N⁴` for the guide lines of the figure.
    pub n2: u64,
    /// `N³` guide line.
    pub n3: u64,
    /// `N⁴` guide line.
    pub n4: u64,
}

/// Configuration of the Fig. 8 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Config {
    /// Output-port constraint (the paper uses `Nout = 2`).
    pub max_outputs: usize,
    /// Sizes of the synthetic random blocks added to the kernel blocks.
    pub random_sizes: Vec<usize>,
    /// Seed of the random-graph generator.
    pub seed: u64,
    /// Optional exploration budget guarding the largest blocks.
    pub exploration_budget: Option<u64>,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            max_outputs: 2,
            random_sizes: vec![2, 4, 6, 8, 12, 16, 20, 25, 30, 40, 50, 60, 80, 100],
            seed: 20030610,
            exploration_budget: Some(crate::DEFAULT_EXPLORATION_BUDGET),
        }
    }
}

/// Counts the cuts considered when searching one block with `Nout = max_outputs` and an
/// effectively unbounded `Nin` (the configuration of Fig. 8).
#[must_use]
pub fn cuts_considered(dfg: &Dfg, max_outputs: usize, budget: Option<u64>) -> u64 {
    let model = DefaultCostModel::new();
    let constraints = Constraints::new(usize::MAX >> 1, max_outputs);
    let mut search = SingleCutSearch::new(dfg, constraints, &model);
    if let Some(budget) = budget {
        search = search.with_exploration_budget(budget);
    }
    search.run().stats.cuts_considered
}

/// Runs the full experiment: every basic block of the bundled suite plus a random-graph
/// size sweep.
#[must_use]
pub fn run(config: &Fig8Config) -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for program in suite::mediabench_like() {
        for block in program.blocks() {
            if block.node_count() < 2 {
                continue;
            }
            rows.push(make_row(block, "kernel", config));
        }
    }
    for dfg in random::size_sweep(&config.random_sizes, config.seed) {
        rows.push(make_row(&dfg, "random", config));
    }
    rows.sort_by_key(|r| r.nodes);
    rows
}

fn make_row(dfg: &Dfg, origin: &str, config: &Fig8Config) -> Fig8Row {
    let n = dfg.node_count() as u64;
    Fig8Row {
        block: dfg.name().to_string(),
        origin: origin.to_string(),
        nodes: dfg.node_count(),
        cuts_considered: cuts_considered(dfg, config.max_outputs, config.exploration_budget),
        n2: n.saturating_pow(2),
        n3: n.saturating_pow(3),
        n4: n.saturating_pow(4),
    }
}

/// Checks the qualitative claim of Fig. 8 on a set of rows: the number of cuts considered
/// stays at or below the `N⁴` guide line for every practical block (it may exceed `N²`).
#[must_use]
pub fn within_polynomial_envelope(rows: &[Fig8Row]) -> bool {
    rows.iter()
        .filter(|r| r.nodes >= 4)
        .all(|r| r.cuts_considered <= r.n4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_workloads::adpcm;

    #[test]
    fn kernel_blocks_stay_within_the_polynomial_envelope() {
        let config = Fig8Config {
            random_sizes: vec![4, 8, 16, 24],
            ..Fig8Config::default()
        };
        let rows = run(&config);
        assert!(rows.len() >= 10);
        assert!(within_polynomial_envelope(&rows));
        // Rows are sorted by block size for plotting.
        assert!(rows.windows(2).all(|w| w[0].nodes <= w[1].nodes));
    }

    #[test]
    fn pruning_beats_exhaustive_enumeration() {
        let block = adpcm::decode_kernel();
        let considered = cuts_considered(&block, 2, None);
        let exhaustive = 1u64 << block.node_count().min(63);
        assert!(considered < exhaustive / 4, "considered {considered} of {exhaustive}");
        assert!(considered > block.node_count() as u64);
    }

    #[test]
    fn tighter_output_ports_consider_fewer_cuts() {
        let block = adpcm::decode_kernel();
        let one = cuts_considered(&block, 1, None);
        let three = cuts_considered(&block, 3, None);
        assert!(one <= three);
    }
}
