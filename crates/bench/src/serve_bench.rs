//! The serve-mode gate: warm cross-request cache versus cold one-shot dispatch.
//!
//! Serve mode ([`ise_api::ServeService`]) promises two things: every served
//! response is **byte-identical** to the one-shot execution paths, and a warm
//! cache answers duplicate-heavy corpus requests at least 2x faster than cold
//! dispatch (the enumeration is paid once per structure, not once per request).
//! This experiment measures both, plus the striped-lock concurrency row
//! (satellite of the same PR: 1 segment versus 16 under concurrent hits) and a
//! snapshot persistence round-trip, and emits the machine-readable
//! `BENCH_serve.json`. The `serve_gate` binary exits non-zero when identity,
//! the warm pay-off, or persistence fail — CI runs it like `corpus_gate`.
//!
//! Dispatch is measured through [`ServeService::handle`] directly (no TCP), so
//! the numbers isolate cache behaviour from socket noise; the TCP path is
//! exercised end-to-end by the `ise-api` and `ise-cli` test suites.

use std::time::Instant;

use ise_api::{json, BatchService, CorpusRequest, ProgramSource, ServeConfig, ServeService};
use ise_core::{Constraints, DriverOptions, IdentifierConfig};
use ise_workloads::corpus::{duplicate_heavy, CorpusConfig};

/// Configuration of the serve-mode experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchConfig {
    /// Shape of the duplicate-heavy synthetic corpus behind every request.
    pub corpus: CorpusConfig,
    /// Seed of the synthetic corpus.
    pub seed: u64,
    /// The constraint set shared by the whole corpus.
    pub constraints: Constraints,
    /// Per-program instruction budget (`Ninstr`).
    pub max_instructions: usize,
    /// Optional exploration budget forwarded to the exact search.
    pub exploration_budget: Option<u64>,
    /// Cold-phase requests (each against a fresh service: every one pays fills).
    pub cold_requests: usize,
    /// Warm-phase requests (against one primed service: none pays fills).
    pub warm_requests: usize,
    /// Threads hammering the warm cache in the striped-lock row.
    pub concurrent_clients: usize,
    /// Warm requests per thread in the striped-lock row.
    pub concurrent_requests: usize,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            corpus: CorpusConfig {
                programs: 12,
                blocks_per_program: 6,
                templates: 3,
                template_nodes: 16,
                unique_per_program: 1,
            },
            seed: 0x5EED,
            constraints: Constraints::new(4, 2),
            max_instructions: 4,
            exploration_budget: Some(500_000),
            cold_requests: 3,
            warm_requests: 20,
            concurrent_clients: 4,
            concurrent_requests: 8,
        }
    }
}

impl ServeBenchConfig {
    /// A reduced configuration for CI smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        ServeBenchConfig {
            corpus: CorpusConfig {
                programs: 6,
                blocks_per_program: 4,
                templates: 2,
                template_nodes: 13,
                unique_per_program: 1,
            },
            cold_requests: 2,
            warm_requests: 8,
            concurrent_clients: 2,
            concurrent_requests: 4,
            ..ServeBenchConfig::default()
        }
    }

    /// The corpus request behind every line of the experiment.
    fn request(&self) -> CorpusRequest {
        let programs = duplicate_heavy(&self.corpus, self.seed)
            .into_iter()
            .map(ProgramSource::Inline)
            .collect();
        CorpusRequest::new(programs)
            .with_constraints(self.constraints)
            .with_config(IdentifierConfig {
                exploration_budget: self.exploration_budget,
                ..IdentifierConfig::default()
            })
            .with_options(DriverOptions::new(self.max_instructions))
    }

    fn serve_config(&self, segments: usize) -> ServeConfig {
        ServeConfig {
            segments,
            ..ServeConfig::default()
        }
    }
}

/// Latency/throughput figures of one phase.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct LatencyReport {
    /// Requests measured.
    pub requests: u64,
    /// Wall-clock of the whole phase, milliseconds.
    pub wall_ms: f64,
    /// Requests per second of wall-clock.
    pub requests_per_sec: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
}

impl LatencyReport {
    fn new(mut latencies_ms: Vec<f64>) -> Self {
        let requests = latencies_ms.len() as u64;
        let wall_ms: f64 = latencies_ms.iter().sum();
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let percentile = |q: f64| -> f64 {
            if latencies_ms.is_empty() {
                return 0.0;
            }
            let index =
                ((q * latencies_ms.len() as f64).ceil() as usize).clamp(1, latencies_ms.len()) - 1;
            latencies_ms[index]
        };
        LatencyReport {
            requests,
            wall_ms,
            requests_per_sec: if wall_ms > 0.0 {
                requests as f64 / (wall_ms / 1_000.0)
            } else {
                0.0
            },
            p50_ms: percentile(0.50),
            p99_ms: percentile(0.99),
        }
    }
}

/// The full gate result, as serialised into `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ServeBenchReport {
    /// Programs in the corpus behind every request.
    pub programs: u64,
    /// Whether every served response was byte-identical to the one-shot path
    /// (cold, warm, concurrent and post-snapshot alike).
    pub identical: bool,
    /// `warm.requests_per_sec / cold.requests_per_sec` (the gate requires >= 2).
    pub warm_speedup: f64,
    /// Cold dispatch: every request against a fresh cache.
    pub cold: LatencyReport,
    /// Warm dispatch: every request against the primed process-lifetime cache.
    pub warm: LatencyReport,
    /// Fills paid by one cold request.
    pub cold_fills: u64,
    /// Fills paid across the whole warm phase (the gate requires 0).
    pub warm_fills: u64,
    /// Cache hit rate over the warm phase.
    pub warm_hit_rate: f64,
    /// Wall-clock of the concurrent warm-hit row on a single-segment cache
    /// (the pre-satellite global-lock layout), milliseconds.
    pub concurrent_single_lock_ms: f64,
    /// Wall-clock of the same row on the 16-segment striped cache, milliseconds.
    pub concurrent_striped_ms: f64,
    /// Whether a snapshot → restart → warm-start round trip answered
    /// byte-identically to cold.
    pub snapshot_roundtrip_identical: bool,
    /// Fills paid after the warm start (the gate requires 0).
    pub snapshot_warm_fills: u64,
}

/// Runs the gate: cold/warm phases, concurrency row, snapshot round trip.
#[must_use]
pub fn run(config: &ServeBenchConfig) -> ServeBenchReport {
    let request = config.request();
    let line = json::to_string(&json::Value::Object(vec![
        ("id".to_string(), json::to_value(&0u64)),
        ("kind".to_string(), json::Value::Str("corpus".to_string())),
        ("request".to_string(), json::to_value(&request)),
    ]));
    // The one-shot reference every served response must match byte-for-byte.
    let (reference, _, _) = BatchService::new()
        .run_corpus(&request)
        .expect("the synthetic corpus is a valid request");
    let expected = json::to_string(&json::Value::Object(vec![
        ("id".to_string(), json::to_value(&0u64)),
        ("response".to_string(), json::to_value(&reference)),
    ]));
    let mut identical = true;

    // Cold: a fresh cache per request — every request pays the full enumeration.
    let mut cold_latencies = Vec::with_capacity(config.cold_requests);
    let mut cold_fills = 0;
    for _ in 0..config.cold_requests.max(1) {
        let service = ServeService::new(&config.serve_config(16));
        let start = Instant::now();
        let response = service.handle(&line);
        cold_latencies.push(start.elapsed().as_secs_f64() * 1_000.0);
        identical &= response == expected;
        cold_fills = service.cache_stats().fills;
    }

    // Warm: one process-lifetime cache, primed by its first request.
    let service = ServeService::new(&config.serve_config(16));
    identical &= service.handle(&line) == expected;
    let fills_after_prime = service.cache_stats().fills;
    let hits_before = service.cache_stats().hits;
    let mut warm_latencies = Vec::with_capacity(config.warm_requests);
    for _ in 0..config.warm_requests.max(1) {
        let start = Instant::now();
        let response = service.handle(&line);
        warm_latencies.push(start.elapsed().as_secs_f64() * 1_000.0);
        identical &= response == expected;
    }
    let warm_stats = service.cache_stats();
    let warm_fills = warm_stats.fills - fills_after_prime;
    let warm_hits = warm_stats.hits - hits_before;
    let warm_lookups = warm_hits + warm_fills;
    let warm_hit_rate = if warm_lookups > 0 {
        warm_hits as f64 / warm_lookups as f64
    } else {
        0.0
    };

    // Concurrency row: the same warm load under 1 lock stripe vs 16.
    let mut concurrent = [0.0f64; 2];
    for (slot, segments) in concurrent.iter_mut().zip([1usize, 16]) {
        let service = ServeService::new(&config.serve_config(segments));
        identical &= service.handle(&line) == expected;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..config.concurrent_clients.max(1) {
                scope.spawn(|| {
                    for _ in 0..config.concurrent_requests.max(1) {
                        if service.handle(&line) != expected {
                            // Propagated through the shared stats check below:
                            // a diverging response also breaks byte identity.
                            panic!("concurrent warm response diverged");
                        }
                    }
                });
            }
        });
        *slot = start.elapsed().as_secs_f64() * 1_000.0;
    }

    // Snapshot round trip: prime, persist, restart, answer without refilling.
    let dir = std::env::temp_dir().join(format!("ise-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let persist_config = ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let first = ServeService::new(&persist_config);
    identical &= first.handle(&line) == expected;
    let snapshot_ok = first.save_snapshot().is_ok_and(|saved| saved.is_some());
    let restarted = ServeService::new(&persist_config);
    let snapshot_roundtrip_identical =
        snapshot_ok && restarted.warm_loaded().is_some() && restarted.handle(&line) == expected;
    let snapshot_warm_fills = restarted.cache_stats().fills;
    let _ = std::fs::remove_dir_all(&dir);

    let cold = LatencyReport::new(cold_latencies);
    let warm = LatencyReport::new(warm_latencies);
    ServeBenchReport {
        programs: config.corpus.programs as u64,
        identical,
        warm_speedup: if cold.requests_per_sec > 0.0 {
            warm.requests_per_sec / cold.requests_per_sec
        } else {
            f64::INFINITY
        },
        cold,
        warm,
        cold_fills,
        warm_fills,
        warm_hit_rate,
        concurrent_single_lock_ms: concurrent[0],
        concurrent_striped_ms: concurrent[1],
        snapshot_roundtrip_identical,
        snapshot_warm_fills,
    }
}

/// Renders the report as the `BENCH_serve.json` payload.
#[must_use]
pub fn to_json(report: &ServeBenchReport) -> String {
    serde::json::to_string_pretty(report)
}

/// Renders the report as a small Markdown table.
#[must_use]
pub fn markdown(report: &ServeBenchReport) -> String {
    format!(
        "| phase | requests | req/s | p50 ms | p99 ms |\n\
         |---|---:|---:|---:|---:|\n\
         | cold | {} | {:.2} | {:.1} | {:.1} |\n\
         | warm | {} | {:.2} | {:.1} | {:.1} |\n\
         \n\
         warm speed-up: {:.2}x, fills cold/warm: {}/{}, warm hit-rate {:.1}%, \
         identical: {}\n\
         concurrent warm hits: {:.1} ms (1 segment) vs {:.1} ms (16 segments)\n\
         snapshot round-trip identical: {} ({} post-restart fills)\n",
        report.cold.requests,
        report.cold.requests_per_sec,
        report.cold.p50_ms,
        report.cold.p99_ms,
        report.warm.requests,
        report.warm.requests_per_sec,
        report.warm.p50_ms,
        report.warm.p99_ms,
        report.warm_speedup,
        report.cold_fills,
        report.warm_fills,
        100.0 * report.warm_hit_rate,
        report.identical,
        report.concurrent_single_lock_ms,
        report.concurrent_striped_ms,
        report.snapshot_roundtrip_identical,
        report.snapshot_warm_fills,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_reports_identity_warm_payoff_and_persistence() {
        let report = run(&ServeBenchConfig::quick());
        assert!(report.identical, "{report:?}");
        assert!(report.warm_speedup >= 2.0, "{report:?}");
        assert_eq!(report.warm_fills, 0, "{report:?}");
        assert!(report.snapshot_roundtrip_identical, "{report:?}");
        assert_eq!(report.snapshot_warm_fills, 0, "{report:?}");
        let json = to_json(&report);
        for field in [
            "\"identical\"",
            "\"warm_speedup\"",
            "\"requests_per_sec\"",
            "\"p50_ms\"",
            "\"p99_ms\"",
            "\"warm_hit_rate\"",
            "\"concurrent_single_lock_ms\"",
            "\"concurrent_striped_ms\"",
            "\"snapshot_roundtrip_identical\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(markdown(&report).contains("identical: true"));
    }
}
