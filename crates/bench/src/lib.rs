//! # ise-bench — experiment harness for the paper's figures
//!
//! This crate regenerates the evaluation artefacts of the paper:
//!
//! * [`fig8`] — the search-space scaling experiment: number of cuts considered by the
//!   single-cut identification algorithm versus basic-block size, with `Nout = 2` and
//!   unbounded `Nin`, over the bundled kernels and a random-graph size sweep (Fig. 8);
//! * [`fig11`] — the algorithm comparison: estimated application speed-up of *Optimal*,
//!   *Iterative*, *Clubbing* and *MaxMISO* for a sweep of `(Nin, Nout)` constraints and up
//!   to 16 special instructions on the MediaBench-like trio (Fig. 11), together with the
//!   per-benchmark area report quoted in Section 8;
//! * [`scaling`] — the intra-block scaling experiment: sequential versus
//!   subtree-parallel exact search on wide single blocks, emitting the machine-readable
//!   `BENCH_search.json` (graph size, cuts considered, cuts/sec, wall-clock, thread
//!   count) and gating CI on sequential/parallel identity;
//! * [`sweep_bench`] — the sweep determinism gate: the Fig. 11 comparison run
//!   pool-backed and direct, asserted byte-identical, with the logical-vs-physical
//!   identifier-call accounting emitted as `BENCH_sweep.json`;
//! * [`corpus_bench`] — the corpus dedup gate: a duplicate-heavy corpus analysed with
//!   structural cross-program sharing on and off, asserted byte-identical with a
//!   >= 2x enumeration reduction, emitted as `BENCH_corpus.json`;
//! * [`frontend_bench`] — the LLVM front-end gate and benchmark: every bundled `.ll`
//!   fixture parsed, lowered and identified, the hand-written `crc32-flat.ll`
//!   differentially checked against the hand-built `crc32_kernel`, and the parsing
//!   throughput emitted as `BENCH_frontend.json`;
//! * [`serve_bench`] — the serve-mode gate: warm cross-request cache throughput
//!   versus cold dispatch on a duplicate-heavy corpus (>= 2x required), byte
//!   identity against the one-shot path, the striped-lock concurrency row and a
//!   snapshot persistence round trip, emitted as `BENCH_serve.json`;
//! * [`template_bench`] — the template gate: cross-site template selection versus
//!   the per-block baseline at a ladder of equal area budgets, with the selector
//!   cross-checked against the brute-force oracle, emitted as
//!   `BENCH_templates.json`;
//! * [`report`] — CSV and Markdown rendering of the experiment rows.
//!
//! The binaries `fig8`, `fig11` and `sweep` print the tables and write CSV files; the
//! Criterion benchmarks under `benches/` measure the *run time* of the identification and
//! selection algorithms themselves (the paper's "seconds in all but extreme cases"
//! claim).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus_bench;
pub mod fig11;
pub mod fig8;
pub mod frontend_bench;
pub mod report;
pub mod scaling;
pub mod serve_bench;
pub mod sweep_bench;
pub mod template_bench;

/// Default exploration budget (cuts considered per identifier invocation) applied to the
/// exact algorithms when they are driven over the largest blocks; the paper similarly
/// notes that the Optimal algorithm could not be run on the largest adpcmdecode blocks.
pub const DEFAULT_EXPLORATION_BUDGET: u64 = 2_000_000;
