//! The corpus dedup gate: structural sharing versus reference per-program searches.
//!
//! The corpus driver ([`ise_core::run_corpus`]) promises that cross-program structural
//! deduplication is **byte-identical** to the per-program reference runs while
//! enumerating far fewer cuts on duplicate-heavy corpora. This experiment runs the
//! same corpus twice — once with dedup, once without — asserts selection-for-selection
//! identity (effort accounting included), and reports blocks seen, unique structural
//! keys, the dedup hit-rate, cuts/second and the wall-clock of both modes as the
//! machine-readable `BENCH_corpus.json`. The `corpus_gate` binary exits non-zero when
//! the modes diverge or the enumeration reduction falls below 2x, making the
//! exactness-and-payoff claim a CI gate (like `sweep_gate`).

use std::time::Instant;

use ise_core::{run_corpus, Constraints, CorpusOptions, CorpusStats, DriverOptions};
use ise_hw::DefaultCostModel;
use ise_ir::Program;
use ise_workloads::corpus::{duplicate_heavy, CorpusConfig};
use ise_workloads::suite;

/// Configuration of the gate experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusBenchConfig {
    /// Shape of the duplicate-heavy synthetic corpus.
    pub corpus: CorpusConfig,
    /// Seed of the synthetic corpus.
    pub seed: u64,
    /// Also append the bundled MediaBench-like kernels to the corpus.
    pub include_kernels: bool,
    /// The constraint set shared by the whole corpus.
    pub constraints: Constraints,
    /// Per-program instruction budget (`Ninstr`).
    pub max_instructions: usize,
    /// Optional exploration budget forwarded to the exact search.
    pub exploration_budget: Option<u64>,
}

impl Default for CorpusBenchConfig {
    fn default() -> Self {
        CorpusBenchConfig {
            corpus: CorpusConfig {
                programs: 12,
                blocks_per_program: 6,
                templates: 3,
                template_nodes: 16,
                unique_per_program: 1,
            },
            seed: 0x5EED,
            include_kernels: true,
            constraints: Constraints::new(4, 2),
            max_instructions: 4,
            exploration_budget: Some(500_000),
        }
    }
}

impl CorpusBenchConfig {
    /// A reduced configuration for CI smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        CorpusBenchConfig {
            corpus: CorpusConfig {
                programs: 6,
                blocks_per_program: 4,
                templates: 2,
                template_nodes: 13,
                unique_per_program: 1,
            },
            include_kernels: false,
            ..CorpusBenchConfig::default()
        }
    }

    fn programs(&self) -> Vec<Program> {
        let mut programs = duplicate_heavy(&self.corpus, self.seed);
        if self.include_kernels {
            programs.extend(suite::mediabench_like());
        }
        programs
    }

    fn options(&self) -> CorpusOptions {
        CorpusOptions::new(self.constraints)
            .with_driver(DriverOptions::new(self.max_instructions))
            .with_exploration_budget(self.exploration_budget)
    }
}

/// The effort and wall-clock of one execution mode.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ModeReport {
    /// Wall-clock of the whole corpus run, milliseconds.
    pub wall_ms: f64,
    /// Search-tree cut enumerations actually performed.
    pub cuts_enumerated: u64,
    /// Enumeration throughput (physical cuts per second of wall-clock).
    pub cuts_per_sec: f64,
}

impl ModeReport {
    fn new(wall_ms: f64, stats: &CorpusStats) -> Self {
        ModeReport {
            wall_ms,
            cuts_enumerated: stats.physical_cuts_considered,
            cuts_per_sec: if wall_ms > 0.0 {
                stats.physical_cuts_considered as f64 / (wall_ms / 1_000.0)
            } else {
                0.0
            },
        }
    }
}

/// The full gate result, as serialised into `BENCH_corpus.json`.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct CorpusBenchReport {
    /// Number of programs in the corpus.
    pub programs: u64,
    /// Total basic blocks across the corpus.
    pub blocks_seen: u64,
    /// Distinct `(structural key, exclusion state)` slots the deduplicator filled.
    pub unique_keys: u64,
    /// Fraction of logical identification calls answered from shared fills.
    pub dedup_hit_rate: f64,
    /// Diagnostic count of 64-bit hash collisions (byte comparison kept them apart).
    pub key_collisions: u64,
    /// Whether the deduplicated selections were byte-identical to the reference.
    pub identical: bool,
    /// `direct.cuts_enumerated / dedup.cuts_enumerated` (the gate requires >= 2).
    pub cuts_reduction: f64,
    /// Deduplicated execution.
    pub dedup: ModeReport,
    /// Reference (per-program) execution.
    pub direct: ModeReport,
}

/// Runs the gate: both modes, identity check, effort accounting.
#[must_use]
pub fn run(config: &CorpusBenchConfig) -> CorpusBenchReport {
    let programs = config.programs();
    let model = DefaultCostModel::new();
    let options = config.options();

    let start = Instant::now();
    let deduped = run_corpus(&programs, &model, &options);
    let dedup_ms = start.elapsed().as_secs_f64() * 1_000.0;

    let start = Instant::now();
    let reference = run_corpus(&programs, &model, &options.with_dedup(false));
    let direct_ms = start.elapsed().as_secs_f64() * 1_000.0;

    let identical = serde::json::to_string(&deduped.selections)
        == serde::json::to_string(&reference.selections);
    let dedup = ModeReport::new(dedup_ms, &deduped.stats);
    let direct = ModeReport::new(direct_ms, &reference.stats);
    let cuts_reduction = if dedup.cuts_enumerated > 0 {
        direct.cuts_enumerated as f64 / dedup.cuts_enumerated as f64
    } else {
        f64::INFINITY
    };
    CorpusBenchReport {
        programs: deduped.stats.programs,
        blocks_seen: deduped.stats.blocks_seen,
        unique_keys: deduped.stats.unique_keys,
        dedup_hit_rate: deduped.stats.dedup_hit_rate(),
        key_collisions: deduped.stats.key_collisions,
        identical,
        cuts_reduction,
        dedup,
        direct,
    }
}

/// Renders the report as the `BENCH_corpus.json` payload.
#[must_use]
pub fn to_json(report: &CorpusBenchReport) -> String {
    serde::json::to_string_pretty(report)
}

/// Renders the report as a small Markdown table.
#[must_use]
pub fn markdown(report: &CorpusBenchReport) -> String {
    format!(
        "| mode | wall ms | cuts enumerated | cuts/sec |\n\
         |---|---:|---:|---:|\n\
         | dedup | {:.1} | {} | {:.0} |\n\
         | direct | {:.1} | {} | {:.0} |\n\
         \n\
         {} blocks, {} unique shapes, hit-rate {:.1}%, identical: {}, \
         enumeration reduction: {:.2}x\n",
        report.dedup.wall_ms,
        report.dedup.cuts_enumerated,
        report.dedup.cuts_per_sec,
        report.direct.wall_ms,
        report.direct.cuts_enumerated,
        report.direct.cuts_per_sec,
        report.blocks_seen,
        report.unique_keys,
        100.0 * report.dedup_hit_rate,
        report.identical,
        report.cuts_reduction,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_reports_identity_and_reduction() {
        let report = run(&CorpusBenchConfig::quick());
        assert!(report.identical, "{report:?}");
        assert!(report.cuts_reduction >= 2.0, "{report:?}");
        assert_eq!(report.key_collisions, 0);
        let json = to_json(&report);
        for field in [
            "\"identical\"",
            "\"cuts_reduction\"",
            "\"dedup_hit_rate\"",
            "\"unique_keys\"",
            "\"cuts_per_sec\"",
            "\"wall_ms\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(markdown(&report).contains("identical: true"));
    }
}
