//! The sweep determinism gate: pool-backed versus direct Fig. 11 sweeps.
//!
//! The cut pool ([`ise_core::pool`]) promises that a memoised sweep is **byte-identical**
//! to the direct per-pair searches while performing strictly fewer search-tree
//! enumerations. This experiment runs the same Fig. 11 comparison twice — once
//! pool-backed, once direct — asserts row-for-row identity, and reports the logical
//! versus physical identifier-call counts and the wall-clock of both modes as the
//! machine-readable `BENCH_sweep.json`. The `sweep_gate` binary exits non-zero when the
//! two modes ever diverge, making the exactness guarantee a CI gate (like the
//! sequential/parallel gate of `scaling`).

use std::time::Instant;

use ise_core::SweepStats;
use ise_ir::Program;
use ise_workloads::suite;

use crate::fig11::{run_algorithms_with_stats, Algorithm, Fig11Config};

/// Configuration of the gate experiment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepBenchConfig {
    /// The underlying Fig. 11 configuration (constraint pairs, instruction budget,
    /// exploration budget; the `direct` flag is driven by the experiment itself).
    pub fig11: Fig11Config,
    /// Restrict the benchmark suite to these programs (`None` = the Fig. 11 trio).
    pub benchmarks: Option<Vec<String>>,
}

impl SweepBenchConfig {
    /// A reduced configuration for CI smoke runs: the quick Fig. 11 pairs on the GSM
    /// and G.721 benchmarks.
    #[must_use]
    pub fn quick() -> Self {
        SweepBenchConfig {
            fig11: Fig11Config::quick(),
            benchmarks: Some(vec!["gsm".to_string(), "g721".to_string()]),
        }
    }

    fn programs(&self) -> Vec<Program> {
        match &self.benchmarks {
            Some(names) => names
                .iter()
                .map(|name| {
                    suite::by_name(name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"))
                })
                .collect(),
            None => suite::fig11_benchmarks(),
        }
    }
}

/// The effort and wall-clock of one execution mode.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ModeReport {
    /// Wall-clock of the whole comparison, milliseconds.
    pub wall_ms: f64,
    /// Identifier calls the emitted results report (identical in both modes).
    pub logical_identifier_calls: u64,
    /// Search-tree enumerations actually performed (fills + direct calls).
    pub physical_identifier_calls: u64,
    /// Pool-fill enumerations (0 in direct mode).
    pub pool_fills: u64,
    /// Queries answered from a memoised pool (0 in direct mode).
    pub pool_answers: u64,
    /// Fills rejected for exhausting the exploration budget.
    pub exhausted_fills: u64,
}

impl ModeReport {
    fn new(wall_ms: f64, stats: SweepStats) -> Self {
        ModeReport {
            wall_ms,
            logical_identifier_calls: stats.logical_identifier_calls,
            physical_identifier_calls: stats.physical_identifier_calls(),
            pool_fills: stats.pool_fills,
            pool_answers: stats.pool_answers,
            exhausted_fills: stats.exhausted_fills,
        }
    }
}

/// The full gate result, as serialised into `BENCH_sweep.json`.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SweepBenchReport {
    /// The benchmarks compared.
    pub benchmarks: Vec<String>,
    /// Number of `(Nin, Nout)` pairs swept per benchmark and algorithm.
    pub pairs: usize,
    /// Whether the pool-backed rows were byte-identical to the direct rows.
    pub identical: bool,
    /// Whether the pool performed strictly fewer enumerations than direct mode.
    pub fewer_invocations: bool,
    /// Relative reduction of physical identifier calls, percent.
    pub invocation_reduction_percent: f64,
    /// Pool-backed execution.
    pub pool: ModeReport,
    /// Direct (reference) execution.
    pub direct: ModeReport,
}

/// Runs the gate: both modes, identity check, effort accounting.
#[must_use]
pub fn run(config: &SweepBenchConfig) -> SweepBenchReport {
    let programs = config.programs();
    let algorithms = Algorithm::all();
    let pooled_config = Fig11Config {
        direct: false,
        ..config.fig11.clone()
    };
    let direct_config = Fig11Config {
        direct: true,
        ..config.fig11.clone()
    };

    let start = Instant::now();
    let (pooled_rows, pooled_stats) =
        run_algorithms_with_stats(&programs, &algorithms, &pooled_config);
    let pool_ms = start.elapsed().as_secs_f64() * 1_000.0;

    let start = Instant::now();
    let (direct_rows, direct_stats) =
        run_algorithms_with_stats(&programs, &algorithms, &direct_config);
    let direct_ms = start.elapsed().as_secs_f64() * 1_000.0;

    let identical = serde::json::to_string(&pooled_rows) == serde::json::to_string(&direct_rows);
    let pool = ModeReport::new(pool_ms, pooled_stats);
    let direct = ModeReport::new(direct_ms, direct_stats);
    let fewer_invocations = pool.physical_identifier_calls < direct.physical_identifier_calls;
    let invocation_reduction_percent = if direct.physical_identifier_calls > 0 {
        100.0
            * (direct.physical_identifier_calls
                - pool
                    .physical_identifier_calls
                    .min(direct.physical_identifier_calls)) as f64
            / direct.physical_identifier_calls as f64
    } else {
        0.0
    };
    SweepBenchReport {
        benchmarks: programs.iter().map(|p| p.name().to_string()).collect(),
        pairs: config.fig11.constraints.len(),
        identical,
        fewer_invocations,
        invocation_reduction_percent,
        pool,
        direct,
    }
}

/// Renders the report as the `BENCH_sweep.json` payload.
#[must_use]
pub fn to_json(report: &SweepBenchReport) -> String {
    serde::json::to_string_pretty(report)
}

/// Renders the report as a small Markdown table.
#[must_use]
pub fn markdown(report: &SweepBenchReport) -> String {
    format!(
        "| mode | wall ms | logical calls | physical calls |\n\
         |---|---:|---:|---:|\n\
         | pool | {:.1} | {} | {} |\n\
         | direct | {:.1} | {} | {} |\n\
         \n\
         identical: {}, physical-call reduction: {:.1}%\n",
        report.pool.wall_ms,
        report.pool.logical_identifier_calls,
        report.pool.physical_identifier_calls,
        report.direct.wall_ms,
        report.direct.logical_identifier_calls,
        report.direct.physical_identifier_calls,
        report.identical,
        report.invocation_reduction_percent,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny configuration so the debug-mode test stays fast: three pairs, the two
    /// smallest benchmarks, exact algorithms only via the standard entry point.
    fn tiny() -> SweepBenchConfig {
        SweepBenchConfig {
            fig11: Fig11Config {
                constraints: vec![
                    ise_core::Constraints::new(2, 1),
                    ise_core::Constraints::new(4, 2),
                ],
                max_instructions: 4,
                ..Fig11Config::default()
            },
            benchmarks: Some(vec!["crc32".to_string(), "g721".to_string()]),
        }
    }

    #[test]
    fn gate_reports_identity_and_reduction() {
        let report = run(&tiny());
        assert!(report.identical, "{report:?}");
        assert!(report.fewer_invocations, "{report:?}");
        assert_eq!(
            report.pool.logical_identifier_calls,
            report.direct.logical_identifier_calls
        );
        let json = to_json(&report);
        for field in [
            "\"identical\"",
            "\"fewer_invocations\"",
            "\"invocation_reduction_percent\"",
            "\"wall_ms\"",
            "\"logical_identifier_calls\"",
            "\"physical_identifier_calls\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(markdown(&report).contains("identical: true"));
    }
}
