//! Fig. 11 — estimated speed-up of Optimal, Iterative, Clubbing and MaxMISO.
//!
//! All per-block identification goes through the engine registry and the
//! `rayon`-parallel program driver of `ise-core`: an algorithm is a *name*, and adding a
//! new one to the comparison means registering it (one file in its home crate) and
//! appending [`Algorithm::Named`] to the compared list — no new dispatch code here.
//! Only the Optimal strategy keeps a bespoke driver ([`ise_core::select_optimal`]): it
//! re-invokes the multiple-cut identifier with a growing cut count, which is a selection
//! *strategy* on top of an identifier rather than a per-block identifier itself.

use ise_baselines::full_registry;
use ise_core::engine::{select_program, DriverOptions, Identifier, IdentifierConfig};
use ise_core::{select_optimal, Constraints, SelectionOptions, SelectionResult};
use ise_core::{SweepPlanner, SweepStats};
use ise_hw::{DefaultCostModel, SoftwareLatencyModel};
use ise_ir::Program;

/// The algorithms compared in Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum Algorithm {
    /// The optimal selection driver over the multiple-cut identification (Section 6.2).
    Optimal,
    /// The iterative single-cut heuristic (Section 6.3), via the `"single-cut"`
    /// registry entry and the parallel program driver.
    Iterative,
    /// The Clubbing baseline (Baleani et al.), via the `"clubbing"` registry entry.
    Clubbing,
    /// The MaxMISO baseline (Alippi et al.), via the `"maxmiso"` registry entry.
    MaxMiso,
    /// Any other registered identifier, addressed by its registry name.
    Named(&'static str),
}

impl Algorithm {
    /// All compared algorithms, in the order used by the published figure.
    #[must_use]
    pub fn all() -> [Algorithm; 4] {
        [
            Algorithm::Optimal,
            Algorithm::Iterative,
            Algorithm::Clubbing,
            Algorithm::MaxMiso,
        ]
    }

    /// Display name used in tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Optimal => "Optimal",
            Algorithm::Iterative => "Iterative",
            Algorithm::Clubbing => "Clubbing",
            Algorithm::MaxMiso => "MaxMISO",
            Algorithm::Named(name) => name,
        }
    }

    /// The registry name of the per-block identifier this algorithm drives, or `None`
    /// for the bespoke Optimal strategy.
    #[must_use]
    pub fn identifier_name(self) -> Option<&'static str> {
        match self {
            Algorithm::Optimal => None,
            Algorithm::Iterative => Some("single-cut"),
            Algorithm::Clubbing => Some("clubbing"),
            Algorithm::MaxMiso => Some("maxmiso"),
            Algorithm::Named(name) => Some(name),
        }
    }
}

/// One bar of the Fig. 11 comparison.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Fig11Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Register-file read-port constraint.
    pub max_inputs: usize,
    /// Register-file write-port constraint.
    pub max_outputs: usize,
    /// Algorithm that produced this row.
    pub algorithm: String,
    /// Estimated whole-application speed-up.
    pub speedup: f64,
    /// Percentage improvement over the baseline processor.
    pub improvement_percent: f64,
    /// Number of special instructions selected (≤ 16 in the paper's experiments).
    pub instructions: usize,
    /// Total normalised datapath area of the selected instructions (in multiples of a
    /// 32-bit MAC).
    pub area: f64,
    /// Largest single instruction selected, in operation nodes.
    pub largest_instruction: usize,
}

/// Configuration of the Fig. 11 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Config {
    /// Constraint pairs to sweep.
    pub constraints: Vec<Constraints>,
    /// Maximum number of special instructions (the paper uses 16).
    pub max_instructions: usize,
    /// Exploration budget per identifier invocation for the exact algorithms.
    pub exploration_budget: Option<u64>,
    /// Skip the Optimal algorithm on blocks larger than this many nodes (the paper could
    /// not run Optimal on adpcmdecode's largest blocks); `None` disables the guard.
    pub optimal_block_limit: Option<usize>,
    /// Fan the per-block identification out across threads. The rows are identical
    /// either way; this only trades wall-clock for cores.
    pub parallel: bool,
    /// Force the reference per-pair searches instead of the memoised cut-pool sweep.
    /// The rows are **byte-identical** either way (`sweep_gate` asserts it in CI);
    /// direct mode exists as the trusted baseline and for effort comparisons.
    pub direct: bool,
}

impl Default for Fig11Config {
    fn default() -> Self {
        Fig11Config {
            constraints: Constraints::paper_sweep(),
            max_instructions: 16,
            exploration_budget: Some(crate::DEFAULT_EXPLORATION_BUDGET),
            optimal_block_limit: Some(24),
            parallel: true,
            direct: false,
        }
    }
}

impl Fig11Config {
    /// A reduced configuration for smoke runs: two constraint pairs, 8 instructions.
    #[must_use]
    pub fn quick() -> Self {
        Fig11Config {
            constraints: vec![Constraints::new(2, 1), Constraints::new(4, 2)],
            max_instructions: 8,
            ..Fig11Config::default()
        }
    }

    /// The engine configuration handed to registry factories.
    #[must_use]
    fn engine_config(&self) -> IdentifierConfig {
        IdentifierConfig::default().with_exploration_budget(self.exploration_budget)
    }
}

/// Runs one algorithm on one benchmark under one constraint pair and returns the
/// resulting selection.
#[must_use]
pub fn select(
    program: &Program,
    algorithm: Algorithm,
    constraints: Constraints,
    config: &Fig11Config,
) -> SelectionResult {
    let model = DefaultCostModel::new();
    let registry = full_registry();
    let driver_options = if config.parallel {
        DriverOptions::new(config.max_instructions)
    } else {
        DriverOptions::new(config.max_instructions).sequential()
    };
    let run_registry = |name: &str| -> SelectionResult {
        let identifier: Box<dyn Identifier> = registry
            .create_configured(name, &config.engine_config())
            .unwrap_or_else(|e| panic!("{e}"));
        select_program(
            program,
            identifier.as_ref(),
            constraints,
            &model,
            driver_options,
        )
    };
    match algorithm.identifier_name() {
        Some(name) => run_registry(name),
        None => {
            let too_large = config
                .optimal_block_limit
                .is_some_and(|limit| program.blocks().iter().any(|b| b.node_count() > limit));
            if too_large {
                // Fall back to the iterative heuristic exactly as the paper had to do for
                // adpcmdecode; the row is still reported under the Optimal label so the
                // figure keeps the same series.
                run_registry("single-cut")
            } else {
                let mut options = SelectionOptions::new(config.max_instructions);
                if let Some(budget) = config.exploration_budget {
                    options = options.with_exploration_budget(budget);
                }
                select_optimal(program, constraints, &model, options)
            }
        }
    }
}

/// Builds the figure row for one computed selection.
fn row(
    program: &Program,
    algorithm: Algorithm,
    constraints: Constraints,
    selection: &SelectionResult,
) -> Fig11Row {
    let software = SoftwareLatencyModel::new();
    let report = selection.speedup_report(program, &software);
    Fig11Row {
        benchmark: program.name().to_string(),
        max_inputs: constraints.max_inputs,
        max_outputs: constraints.max_outputs,
        algorithm: algorithm.name().to_string(),
        speedup: report.speedup,
        improvement_percent: report.improvement_percent(),
        instructions: selection.len(),
        area: report.total_area,
        largest_instruction: selection
            .chosen
            .iter()
            .map(|c| c.identified.evaluation.nodes)
            .max()
            .unwrap_or(0),
    }
}

/// Runs one algorithm on one benchmark under one constraint pair and returns its row.
#[must_use]
pub fn evaluate(
    program: &Program,
    algorithm: Algorithm,
    constraints: Constraints,
    config: &Fig11Config,
) -> Fig11Row {
    let selection = select(program, algorithm, constraints, config);
    row(program, algorithm, constraints, &selection)
}

/// Runs one algorithm's whole constraint sweep on one benchmark through a shared
/// [`SweepPlanner`], so that every `(block, exclusion-state)` is enumerated once under
/// the loosest constraints and every pair is answered from the memoised pool.
///
/// The results are byte-identical to per-pair [`select`] calls; only the enumeration
/// work differs (the planner's [`SweepStats`] report the saving).
fn sweep_select(
    program: &Program,
    planner: &mut SweepPlanner<'_>,
    algorithm: Algorithm,
    config: &Fig11Config,
) -> Vec<SelectionResult> {
    let registry = full_registry();
    match algorithm {
        Algorithm::Iterative => planner.run_single_cut(&config.constraints),
        Algorithm::Optimal => {
            let too_large = config
                .optimal_block_limit
                .is_some_and(|limit| program.blocks().iter().any(|b| b.node_count() > limit));
            if too_large {
                // The paper's fallback for its largest blocks: the iterative
                // heuristic, reported under the Optimal label. Sharing the planner
                // also shares the single-cut pools the Iterative series filled.
                planner.run_single_cut(&config.constraints)
            } else {
                planner.run_optimal(&config.constraints)
            }
        }
        other => {
            let name = other
                .identifier_name()
                .expect("only Optimal has no identifier name");
            let identifier: Box<dyn Identifier> = registry
                .create_configured(name, &config.engine_config())
                .unwrap_or_else(|e| panic!("{e}"));
            planner.run_direct(identifier.as_ref(), &config.constraints)
        }
    }
}

/// Runs the full comparison over a set of benchmarks.
#[must_use]
pub fn run(benchmarks: &[Program], config: &Fig11Config) -> Vec<Fig11Row> {
    run_algorithms(benchmarks, &Algorithm::all(), config)
}

/// Runs the comparison for an explicit list of algorithms.
#[must_use]
pub fn run_algorithms(
    benchmarks: &[Program],
    algorithms: &[Algorithm],
    config: &Fig11Config,
) -> Vec<Fig11Row> {
    run_algorithms_with_stats(benchmarks, algorithms, config).0
}

/// [`run_algorithms`], additionally returning the aggregated effort accounting
/// (logical versus physical identifier invocations) across the whole comparison.
///
/// In direct mode every logical call is performed physically; in pool mode (the
/// default) the physical count is strictly smaller on any multi-pair sweep. The row
/// payload is byte-identical in both modes.
#[must_use]
pub fn run_algorithms_with_stats(
    benchmarks: &[Program],
    algorithms: &[Algorithm],
    config: &Fig11Config,
) -> (Vec<Fig11Row>, SweepStats) {
    let model = DefaultCostModel::new();
    let mut driver_options = DriverOptions::new(config.max_instructions);
    if !config.parallel {
        driver_options = driver_options.sequential();
    }
    let mut rows = Vec::new();
    let mut stats = SweepStats::default();
    for program in benchmarks {
        // One planner per benchmark: the Iterative series and the Optimal fallback
        // share whatever single-cut pools they have in common.
        let mut planner = SweepPlanner::new(program, &model, driver_options, &config.constraints)
            .with_exploration_budget(config.exploration_budget);
        let selections: Vec<Vec<SelectionResult>> = algorithms
            .iter()
            .map(|&algorithm| {
                if config.direct {
                    let per_pair: Vec<SelectionResult> = config
                        .constraints
                        .iter()
                        .map(|&constraints| select(program, algorithm, constraints, config))
                        .collect();
                    let calls: u64 = per_pair.iter().map(|s| s.identifier_calls).sum();
                    stats.logical_identifier_calls += calls;
                    stats.direct_calls += calls;
                    per_pair
                } else {
                    sweep_select(program, &mut planner, algorithm, config)
                }
            })
            .collect();
        if !config.direct {
            stats.merge(&planner.stats());
        }
        for (pair_index, &constraints) in config.constraints.iter().enumerate() {
            for (algorithm_index, &algorithm) in algorithms.iter().enumerate() {
                rows.push(row(
                    program,
                    algorithm,
                    constraints,
                    &selections[algorithm_index][pair_index],
                ));
            }
        }
    }
    (rows, stats)
}

/// Qualitative checks corresponding to the observations of Section 8 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShapeChecks {
    /// Iterative (and Optimal) never lose to Clubbing or MaxMISO on any configuration.
    pub exact_dominates_baselines: bool,
    /// The advantage of the exact algorithms grows (or at least does not shrink) when
    /// moving from the tightest to the loosest constraint pair.
    pub gap_grows_with_ports: bool,
    /// Optimal and Iterative agree within a small tolerance.
    pub optimal_close_to_iterative: bool,
}

/// Evaluates the qualitative shape checks on a set of rows.
#[must_use]
pub fn shape_checks(rows: &[Fig11Row]) -> ShapeChecks {
    let speedup_of = |benchmark: &str, nin: usize, nout: usize, algo: &str| -> Option<f64> {
        rows.iter()
            .find(|r| {
                r.benchmark == benchmark
                    && r.max_inputs == nin
                    && r.max_outputs == nout
                    && r.algorithm == algo
            })
            .map(|r| r.speedup)
    };
    let mut benchmarks: Vec<&str> = rows.iter().map(|r| r.benchmark.as_str()).collect();
    benchmarks.sort_unstable();
    benchmarks.dedup();
    let mut pairs: Vec<(usize, usize)> =
        rows.iter().map(|r| (r.max_inputs, r.max_outputs)).collect();
    pairs.sort_unstable();
    pairs.dedup();

    let mut exact_dominates = true;
    let mut optimal_close = true;
    for &benchmark in &benchmarks {
        for &(nin, nout) in &pairs {
            let iterative = speedup_of(benchmark, nin, nout, "Iterative").unwrap_or(1.0);
            let optimal = speedup_of(benchmark, nin, nout, "Optimal").unwrap_or(1.0);
            let clubbing = speedup_of(benchmark, nin, nout, "Clubbing").unwrap_or(1.0);
            let maxmiso = speedup_of(benchmark, nin, nout, "MaxMISO").unwrap_or(1.0);
            if iterative + 1e-9 < clubbing || iterative + 1e-9 < maxmiso {
                exact_dominates = false;
            }
            if (optimal - iterative).abs() > 0.25 * iterative.max(1.0) {
                optimal_close = false;
            }
        }
    }

    // Compare the exact-vs-baseline gap under the tightest and loosest constraints.
    let mut gap_grows = true;
    if let (Some(&tight), Some(&loose)) = (pairs.first(), pairs.last()) {
        for &benchmark in &benchmarks {
            let gap = |pair: (usize, usize)| -> f64 {
                let iterative = speedup_of(benchmark, pair.0, pair.1, "Iterative").unwrap_or(1.0);
                let best_baseline = speedup_of(benchmark, pair.0, pair.1, "Clubbing")
                    .unwrap_or(1.0)
                    .max(speedup_of(benchmark, pair.0, pair.1, "MaxMISO").unwrap_or(1.0));
                iterative - best_baseline
            };
            if gap(loose) + 1e-9 < gap(tight) {
                gap_grows = false;
            }
        }
    }

    ShapeChecks {
        exact_dominates_baselines: exact_dominates,
        gap_grows_with_ports: gap_grows,
        optimal_close_to_iterative: optimal_close,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_workloads::{g721, gsm};

    #[test]
    fn single_benchmark_comparison_has_the_expected_shape() {
        let config = Fig11Config::quick();
        let programs = vec![gsm::program(), g721::program()];
        let rows = run(&programs, &config);
        assert_eq!(rows.len(), 2 * 2 * 4);
        for row in &rows {
            assert!(row.speedup >= 1.0, "{row:?}");
            assert!(row.instructions <= 8);
        }
        let checks = shape_checks(&rows);
        assert!(checks.exact_dominates_baselines);
        assert!(checks.optimal_close_to_iterative);
    }

    #[test]
    fn looser_constraints_never_reduce_the_iterative_speedup() {
        let config = Fig11Config {
            constraints: vec![
                Constraints::new(2, 1),
                Constraints::new(4, 2),
                Constraints::new(8, 4),
            ],
            max_instructions: 8,
            ..Fig11Config::default()
        };
        let program = gsm::program();
        let mut last = 0.0;
        for &constraints in &config.constraints {
            let row = evaluate(&program, Algorithm::Iterative, constraints, &config);
            assert!(row.speedup + 1e-9 >= last);
            last = row.speedup;
        }
    }

    #[test]
    fn parallel_and_sequential_rows_are_identical() {
        let parallel = Fig11Config::quick();
        let sequential = Fig11Config {
            parallel: false,
            ..Fig11Config::quick()
        };
        let program = gsm::program();
        for algorithm in Algorithm::all() {
            let a = evaluate(&program, algorithm, Constraints::new(4, 2), &parallel);
            let b = evaluate(&program, algorithm, Constraints::new(4, 2), &sequential);
            assert_eq!(a, b, "{}", algorithm.name());
        }
    }

    #[test]
    fn pool_backed_rows_are_byte_identical_to_direct_rows() {
        let pooled_config = Fig11Config::quick();
        let direct_config = Fig11Config {
            direct: true,
            ..Fig11Config::quick()
        };
        let programs = vec![gsm::program(), g721::program()];
        let (pooled, pooled_stats) =
            run_algorithms_with_stats(&programs, &Algorithm::all(), &pooled_config);
        let (direct, direct_stats) =
            run_algorithms_with_stats(&programs, &Algorithm::all(), &direct_config);
        assert_eq!(pooled, direct);
        assert_eq!(
            serde::json::to_string(&pooled),
            serde::json::to_string(&direct)
        );
        // Identical logical accounting, strictly fewer physical enumerations.
        assert_eq!(
            pooled_stats.logical_identifier_calls,
            direct_stats.logical_identifier_calls
        );
        assert!(
            pooled_stats.physical_identifier_calls() < direct_stats.physical_identifier_calls()
        );
    }

    #[test]
    fn named_algorithms_run_through_the_registry() {
        let config = Fig11Config::quick();
        let program = gsm::program();
        let row = evaluate(
            &program,
            Algorithm::Named("single-node"),
            Constraints::new(4, 2),
            &config,
        );
        assert_eq!(row.algorithm, "single-node");
        // The trivial per-node baseline never beats the exact search.
        let exact = evaluate(
            &program,
            Algorithm::Iterative,
            Constraints::new(4, 2),
            &config,
        );
        assert!(exact.speedup + 1e-9 >= row.speedup);
    }
}
