//! Intra-block scaling experiment: wall-clock of the exact search, sequential versus
//! subtree-parallel, on wide single blocks — against the retained pre-bitset baseline.
//!
//! The paper's Fig. 8 axis — one large basic block — is exactly the case the program
//! driver's per-block fan-out cannot parallelise, and the case the
//! [`SearchKernel`](ise_core::kernel::SearchKernel)'s subtree decomposition exists for.
//! This experiment measures it: for a sweep of wide synthetic blocks (including the
//! `widedag` shape of the program-level benches) each repetition alternates four runs —
//! the retained `Vec<bool>` reference search (the "before" of the bitset repack), the
//! bitset search sequentially, the bitset search with the top decision-tree levels
//! fanned out, and the sequential opt-in incumbent-bound search. It checks that all of
//! them return the **same selection** (the parallel twin must match the sequential one
//! on cuts *and* statistics; the reference and incumbent variants on the selected cut),
//! and reports best-of-N wall-clock, raw throughput (cuts considered per second),
//! *equivalent* throughput (the reference walk's cut count over each variant's
//! wall-clock — the honest apples-to-apples rate when a variant prunes the tree
//! smaller), and the machine-readable `pruning_breakdown` so future changes can track
//! bound effectiveness. The rows serialise to `BENCH_search.json`; the `scaling` binary
//! fails loudly if any equality gate breaks.

use std::time::Instant;

use ise_core::engine::Identifier;
use ise_core::{
    identify_single_cut_reference, Constraints, SearchOutcome, SearchStats, SingleCutSearch,
};
use ise_hw::DefaultCostModel;
use ise_workloads::random;

/// Configuration of the scaling experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingConfig {
    /// Node counts of the wide synthetic blocks measured.
    pub block_sizes: Vec<usize>,
    /// Seed of the block generator.
    pub seed: u64,
    /// Output-port constraint (`Nin` stays unbounded, as in Fig. 8).
    pub max_outputs: usize,
    /// Decision-tree levels fanned out in the parallel runs.
    pub split_levels: usize,
    /// Timed repetitions per block; the reported wall-clock is the best of them.
    /// All variants alternate within each repetition, so warm-up bias cannot be
    /// credited to whichever variant happens to run later.
    pub repeats: usize,
    /// Node count of the dedicated `widedag` row (the single-block version of the
    /// program-level `widedag` workload shape).
    pub widedag_nodes: usize,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            block_sizes: vec![32, 36, 40],
            seed: 0x5CA11,
            max_outputs: 2,
            split_levels: 5,
            repeats: 3,
            widedag_nodes: 48,
        }
    }
}

impl ScalingConfig {
    /// A reduced configuration for CI smoke runs: smaller blocks, shallower split.
    #[must_use]
    pub fn quick() -> Self {
        ScalingConfig {
            block_sizes: vec![20, 26],
            split_levels: 4,
            repeats: 2,
            widedag_nodes: 22,
            ..ScalingConfig::default()
        }
    }
}

/// Machine-readable classification of every 1-branch attempt of the sequential bitset
/// search, plus the software-branch subtree prunes — tracked so future changes can
/// measure frontier-bound effectiveness from `BENCH_search.json` alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct PruningBreakdown {
    /// Attempts that passed every check and grew the cut.
    pub feasible: u64,
    /// Attempts pruned by the output-port constraint.
    pub pruned_output: u64,
    /// Attempts pruned by the convexity check.
    pub pruned_convexity: u64,
    /// Attempts pruned by the node budget.
    pub pruned_node_budget: u64,
    /// Attempts pruned by the frontier bound (and the incumbent-mode input floor).
    pub pruned_bound: u64,
    /// Software-branch subtrees skipped by the bound before any cut was attempted.
    pub bound_subtree_prunes: u64,
}

impl PruningBreakdown {
    fn from_stats(stats: &SearchStats) -> Self {
        PruningBreakdown {
            feasible: stats.feasible_cuts,
            pruned_output: stats.pruned_output,
            pruned_convexity: stats.pruned_convexity,
            pruned_node_budget: stats.pruned_node_budget,
            pruned_bound: stats.pruned_bound,
            bound_subtree_prunes: stats.bound_subtree_prunes,
        }
    }
}

/// One measured block of the scaling experiment.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ScalingRow {
    /// Name of the measured block.
    pub block: String,
    /// Number of operation nodes (the graph size axis).
    pub nodes: usize,
    /// Worker threads available to the parallel run.
    pub threads: usize,
    /// Decision-tree levels fanned out in the parallel run.
    pub split_levels: usize,
    /// Cuts considered by the bitset search (identical in the sequential and parallel
    /// runs by construction).
    pub cuts_considered: u64,
    /// Cuts considered by the retained pre-bitset reference search (no frontier
    /// bound) — the denominator of the equivalent-throughput figures.
    pub reference_cuts_considered: u64,
    /// Best wall-clock of the reference search over the repetitions, milliseconds.
    pub reference_ms: f64,
    /// Best wall-clock of the sequential bitset search over the repetitions,
    /// milliseconds.
    pub sequential_ms: f64,
    /// Best wall-clock of the subtree-parallel bitset search over the repetitions,
    /// milliseconds.
    pub parallel_ms: f64,
    /// Best wall-clock of the sequential incumbent-bound search, milliseconds.
    pub incumbent_ms: f64,
    /// Cuts considered by the incumbent-bound search (order-dependent, typically far
    /// fewer than the default walk).
    pub incumbent_cuts_considered: u64,
    /// Throughput of the reference search, cuts considered per second.
    pub reference_cuts_per_sec: f64,
    /// Throughput of the sequential bitset search, cuts considered per second.
    pub sequential_cuts_per_sec: f64,
    /// Throughput of the parallel bitset search, cuts considered per second.
    pub parallel_cuts_per_sec: f64,
    /// *Equivalent* throughput of the sequential bitset search: the reference walk's
    /// cut count over the bitset wall-clock (apples-to-apples even when the bound
    /// shrinks the tree).
    pub equivalent_cuts_per_sec: f64,
    /// Equivalent throughput of the incumbent-bound search (reference cut count over
    /// incumbent wall-clock).
    pub incumbent_equivalent_cuts_per_sec: f64,
    /// Reference over sequential-bitset wall-clock.
    pub speedup_vs_reference: f64,
    /// Reference over incumbent-bound wall-clock.
    pub incumbent_speedup_vs_reference: f64,
    /// Attempts pruned by the frontier bound in the default (static-threshold) walk.
    pub bound_pruned: u64,
    /// Classification of every attempt of the sequential bitset walk.
    pub pruning_breakdown: PruningBreakdown,
    /// Sequential over parallel wall-clock.
    pub speedup: f64,
    /// Whether the sequential and parallel bitset outcomes (best cut **and**
    /// statistics) were identical.
    pub identical: bool,
    /// Whether the reference and incumbent-bound searches selected the same cut as the
    /// bitset search.
    pub matches_reference: bool,
}

/// The full experiment result, as serialised into `BENCH_search.json`.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ScalingReport {
    /// Worker threads the parallel runs could use.
    pub threads: usize,
    /// Per-block measurements of the single-cut search.
    pub rows: Vec<ScalingRow>,
    /// Whether multicut and the exhaustive oracle also matched their sequential runs
    /// on the cross-client check blocks.
    pub cross_client_identical: bool,
    /// Conjunction of every per-row and cross-client identity check.
    pub all_identical: bool,
}

fn timed_identify(
    identifier: &dyn Identifier,
    dfg: &ise_ir::Dfg,
    constraints: &Constraints,
    model: &DefaultCostModel,
    split_levels: usize,
) -> (SearchOutcome, f64) {
    let start = Instant::now();
    let outcome = identifier.identify_split(dfg, None, constraints, model, split_levels);
    (outcome, start.elapsed().as_secs_f64() * 1_000.0)
}

fn cuts_per_sec(cuts: u64, millis: f64) -> f64 {
    if millis <= 0.0 {
        0.0
    } else {
        cuts as f64 * 1_000.0 / millis
    }
}

fn ratio(numerator: f64, denominator: f64) -> f64 {
    if denominator > 0.0 {
        numerator / denominator
    } else {
        0.0
    }
}

/// Measures one block: the reference baseline, the sequential and parallel bitset
/// searches, and the incumbent-bound search, alternating within each repetition and
/// keeping the best wall-clock of each so first-run warm-up (allocator, caches) is not
/// credited to any one variant.
fn measure_block(
    dfg: &ise_ir::Dfg,
    row_name: &str,
    constraints: Constraints,
    model: &DefaultCostModel,
    config: &ScalingConfig,
) -> ScalingRow {
    let single_cut = ise_core::engine::SingleCut::new();
    let mut reference_ms = f64::INFINITY;
    let mut sequential_ms = f64::INFINITY;
    let mut parallel_ms = f64::INFINITY;
    let mut incumbent_ms = f64::INFINITY;
    let mut reference = None;
    let mut sequential = None;
    let mut parallel = None;
    let mut incumbent = None;
    for _ in 0..config.repeats.max(1) {
        let start = Instant::now();
        let outcome = identify_single_cut_reference(dfg, constraints, model);
        reference_ms = reference_ms.min(start.elapsed().as_secs_f64() * 1_000.0);
        reference = Some(outcome);
        let (outcome, ms) = timed_identify(&single_cut, dfg, &constraints, model, 0);
        sequential_ms = sequential_ms.min(ms);
        sequential = Some(outcome);
        let (outcome, ms) =
            timed_identify(&single_cut, dfg, &constraints, model, config.split_levels);
        parallel_ms = parallel_ms.min(ms);
        parallel = Some(outcome);
        let start = Instant::now();
        let outcome = SingleCutSearch::new(dfg, constraints, model)
            .with_incumbent_bound()
            .run();
        incumbent_ms = incumbent_ms.min(start.elapsed().as_secs_f64() * 1_000.0);
        incumbent = Some(outcome);
    }
    let reference = reference.expect("repeats >= 1");
    let sequential = sequential.expect("repeats >= 1");
    let parallel = parallel.expect("repeats >= 1");
    let incumbent = incumbent.expect("repeats >= 1");
    let identical = sequential == parallel;
    let matches_reference = sequential.best == reference.best && incumbent.best == sequential.best;
    let cuts = sequential.stats.cuts_considered;
    let reference_cuts = reference.stats.cuts_considered;
    ScalingRow {
        block: row_name.to_string(),
        nodes: dfg.node_count(),
        threads: rayon::current_num_threads(),
        split_levels: config.split_levels,
        cuts_considered: cuts,
        reference_cuts_considered: reference_cuts,
        reference_ms,
        sequential_ms,
        parallel_ms,
        incumbent_ms,
        incumbent_cuts_considered: incumbent.stats.cuts_considered,
        reference_cuts_per_sec: cuts_per_sec(reference_cuts, reference_ms),
        sequential_cuts_per_sec: cuts_per_sec(cuts, sequential_ms),
        parallel_cuts_per_sec: cuts_per_sec(parallel.stats.cuts_considered, parallel_ms),
        equivalent_cuts_per_sec: cuts_per_sec(reference_cuts, sequential_ms),
        incumbent_equivalent_cuts_per_sec: cuts_per_sec(reference_cuts, incumbent_ms),
        speedup_vs_reference: ratio(reference_ms, sequential_ms),
        incumbent_speedup_vs_reference: ratio(reference_ms, incumbent_ms),
        bound_pruned: sequential.stats.pruned_bound,
        pruning_breakdown: PruningBreakdown::from_stats(&sequential.stats),
        speedup: ratio(sequential_ms, parallel_ms),
        identical,
        matches_reference,
    }
}

/// Runs the experiment: one wide block per configured size plus the dedicated
/// `widedag` row, each measured against the reference baseline (see `measure_block`),
/// plus a cross-client identity check driving multicut and the exhaustive oracle
/// through the same kernel split.
#[must_use]
pub fn run(config: &ScalingConfig) -> ScalingReport {
    let model = DefaultCostModel::new();
    let constraints = Constraints::new(usize::MAX >> 1, config.max_outputs);

    let mut rows = Vec::new();
    for (index, &nodes) in config.block_sizes.iter().enumerate() {
        let dfg = random::wide_dfg(nodes, config.seed + index as u64);
        let name = dfg.name().to_string();
        rows.push(measure_block(&dfg, &name, constraints, &model, config));
    }
    // The single-block version of the program-level `widedag` workload (same generator
    // and seed offset as `wide_dag_program`'s first block).
    let widedag = random::wide_dfg(config.widedag_nodes, 0x81DA6);
    rows.push(measure_block(
        &widedag,
        "widedag",
        constraints,
        &model,
        config,
    ));

    let cross_client_identical = cross_client_check(config, &model);
    let all_identical =
        cross_client_identical && rows.iter().all(|r| r.identical && r.matches_reference);
    ScalingReport {
        threads: rayon::current_num_threads(),
        rows,
        cross_client_identical,
        all_identical,
    }
}

/// Drives the other two kernel clients — multicut and the exhaustive oracle — through
/// the same split on small wide blocks and checks the parallel outcome (cuts and
/// statistics) equals the sequential one.
fn cross_client_check(config: &ScalingConfig, model: &DefaultCostModel) -> bool {
    let constraints = Constraints::new(4, 2);
    let multicut = ise_core::engine::MultiCut::new(2);
    let oracle = ise_core::engine::Exhaustive::new();
    let mut identical = true;
    for (identifier, nodes) in [(&multicut as &dyn Identifier, 12usize), (&oracle, 12)] {
        let dfg = random::wide_dfg(nodes, config.seed ^ 0xC7055);
        let sequential = identifier.identify_split(&dfg, None, &constraints, model, 0);
        let parallel =
            identifier.identify_split(&dfg, None, &constraints, model, config.split_levels);
        identical &= sequential == parallel;
    }
    identical
}

/// Renders the report as the `BENCH_search.json` payload.
#[must_use]
pub fn to_json(report: &ScalingReport) -> String {
    serde::json::to_string_pretty(report)
}

/// Renders the rows as a Markdown table.
#[must_use]
pub fn markdown(report: &ScalingReport) -> String {
    let mut out = String::from(
        "| block | nodes | cuts | ref ms | seq ms | par ms | inc ms | vs ref | inc vs ref \
         | bound pruned | speedup | ok |\n\
         |---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---|\n",
    );
    for r in &report.rows {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.2}x | {:.2}x | {} | {:.2}x | {} |\n",
            r.block,
            r.nodes,
            r.cuts_considered,
            r.reference_ms,
            r.sequential_ms,
            r.parallel_ms,
            r.incumbent_ms,
            r.speedup_vs_reference,
            r.incumbent_speedup_vs_reference,
            r.bound_pruned,
            r.speedup,
            r.identical && r.matches_reference
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny configuration so the debug-mode test stays fast.
    fn tiny() -> ScalingConfig {
        ScalingConfig {
            block_sizes: vec![12, 14],
            split_levels: 3,
            widedag_nodes: 12,
            ..ScalingConfig::default()
        }
    }

    #[test]
    fn parallel_and_sequential_outputs_are_identical() {
        let report = run(&tiny());
        assert_eq!(report.rows.len(), 3); // the configured sizes plus the widedag row
        assert!(report.all_identical, "{report:?}");
        assert!(report.cross_client_identical);
        assert_eq!(
            report.rows.last().map(|r| r.block.as_str()),
            Some("widedag")
        );
        for row in &report.rows {
            assert!(row.identical, "{row:?}");
            assert!(row.matches_reference, "{row:?}");
            assert!(row.cuts_considered > 0);
            assert!(row.reference_cuts_considered >= row.cuts_considered);
            assert!(row.sequential_ms >= 0.0);
            // The breakdown partitions the attempts of the sequential bitset walk.
            let b = &row.pruning_breakdown;
            assert_eq!(
                row.cuts_considered,
                b.feasible
                    + b.pruned_output
                    + b.pruned_convexity
                    + b.pruned_node_budget
                    + b.pruned_bound
            );
            assert_eq!(row.bound_pruned, b.pruned_bound);
        }
    }

    #[test]
    fn json_payload_carries_the_required_fields() {
        let report = run(&tiny());
        let json = to_json(&report);
        for field in [
            "\"nodes\"",
            "\"threads\"",
            "\"cuts_considered\"",
            "\"reference_cuts_considered\"",
            "\"reference_ms\"",
            "\"sequential_ms\"",
            "\"parallel_ms\"",
            "\"incumbent_ms\"",
            "\"sequential_cuts_per_sec\"",
            "\"parallel_cuts_per_sec\"",
            "\"equivalent_cuts_per_sec\"",
            "\"incumbent_equivalent_cuts_per_sec\"",
            "\"speedup_vs_reference\"",
            "\"bound_pruned\"",
            "\"pruning_breakdown\"",
            "\"matches_reference\"",
            "\"speedup\"",
            "\"all_identical\"",
            "\"widedag\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let md = markdown(&report);
        assert!(md.lines().count() >= 5);
    }
}
