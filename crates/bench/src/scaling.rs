//! Intra-block scaling experiment: wall-clock of the exact search, sequential versus
//! subtree-parallel, on wide single blocks.
//!
//! The paper's Fig. 8 axis — one large basic block — is exactly the case the program
//! driver's per-block fan-out cannot parallelise, and the case the
//! [`SearchKernel`](ise_core::kernel::SearchKernel)'s subtree decomposition exists for.
//! This experiment measures it: for a sweep of wide synthetic blocks it runs the
//! single-cut search once sequentially and once with the top decision-tree levels
//! fanned out, checks the two outcomes are **identical** (cuts, statistics and all),
//! and reports wall-clock, throughput (cuts considered per second) and the thread
//! count. The rows serialise to the machine-readable `BENCH_search.json`, giving the
//! repository a perf trajectory that CI can track; the `scaling` binary fails loudly if
//! the sequential and parallel outputs ever diverge.

use std::time::Instant;

use ise_core::engine::Identifier;
use ise_core::{Constraints, SearchOutcome};
use ise_hw::DefaultCostModel;
use ise_workloads::random;

/// Configuration of the scaling experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingConfig {
    /// Node counts of the wide synthetic blocks measured.
    pub block_sizes: Vec<usize>,
    /// Seed of the block generator.
    pub seed: u64,
    /// Output-port constraint (`Nin` stays unbounded, as in Fig. 8).
    pub max_outputs: usize,
    /// Decision-tree levels fanned out in the parallel runs.
    pub split_levels: usize,
    /// Timed repetitions per block; the reported wall-clock is the best of them.
    /// Sequential and parallel runs alternate, so warm-up bias cannot be credited to
    /// whichever variant happens to run second.
    pub repeats: usize,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            block_sizes: vec![32, 36, 40],
            seed: 0x5CA11,
            max_outputs: 2,
            split_levels: 5,
            repeats: 3,
        }
    }
}

impl ScalingConfig {
    /// A reduced configuration for CI smoke runs: smaller blocks, shallower split.
    #[must_use]
    pub fn quick() -> Self {
        ScalingConfig {
            block_sizes: vec![20, 26],
            split_levels: 4,
            repeats: 2,
            ..ScalingConfig::default()
        }
    }
}

/// One measured block of the scaling experiment.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ScalingRow {
    /// Name of the measured block.
    pub block: String,
    /// Number of operation nodes (the graph size axis).
    pub nodes: usize,
    /// Worker threads available to the parallel run.
    pub threads: usize,
    /// Decision-tree levels fanned out in the parallel run.
    pub split_levels: usize,
    /// Cuts considered by the search (identical in both runs by construction).
    pub cuts_considered: u64,
    /// Best wall-clock of the sequential search over the repetitions, milliseconds.
    pub sequential_ms: f64,
    /// Best wall-clock of the subtree-parallel search over the repetitions,
    /// milliseconds.
    pub parallel_ms: f64,
    /// Throughput of the sequential search, cuts considered per second.
    pub sequential_cuts_per_sec: f64,
    /// Throughput of the parallel search, cuts considered per second.
    pub parallel_cuts_per_sec: f64,
    /// Sequential over parallel wall-clock.
    pub speedup: f64,
    /// Whether the two outcomes (best cut **and** statistics) were identical.
    pub identical: bool,
}

/// The full experiment result, as serialised into `BENCH_search.json`.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ScalingReport {
    /// Worker threads the parallel runs could use.
    pub threads: usize,
    /// Per-block measurements of the single-cut search.
    pub rows: Vec<ScalingRow>,
    /// Whether multicut and the exhaustive oracle also matched their sequential runs
    /// on the cross-client check blocks.
    pub cross_client_identical: bool,
    /// Conjunction of every per-row and cross-client identity check.
    pub all_identical: bool,
}

fn timed_identify(
    identifier: &dyn Identifier,
    dfg: &ise_ir::Dfg,
    constraints: &Constraints,
    model: &DefaultCostModel,
    split_levels: usize,
) -> (SearchOutcome, f64) {
    let start = Instant::now();
    let outcome = identifier.identify_split(dfg, None, constraints, model, split_levels);
    (outcome, start.elapsed().as_secs_f64() * 1_000.0)
}

fn cuts_per_sec(cuts: u64, millis: f64) -> f64 {
    if millis <= 0.0 {
        0.0
    } else {
        cuts as f64 * 1_000.0 / millis
    }
}

/// Runs the experiment: one wide block per configured size, single-cut search measured
/// sequentially and subtree-parallel, plus a cross-client identity check driving
/// multicut and the exhaustive oracle through the same kernel split.
#[must_use]
pub fn run(config: &ScalingConfig) -> ScalingReport {
    let model = DefaultCostModel::new();
    let constraints = Constraints::new(usize::MAX >> 1, config.max_outputs);
    let single_cut = ise_core::engine::SingleCut::new();

    let mut rows = Vec::new();
    for (index, &nodes) in config.block_sizes.iter().enumerate() {
        let dfg = random::wide_dfg(nodes, config.seed + index as u64);
        // Alternate sequential/parallel measurements and keep the best of each, so
        // first-run warm-up (allocator, caches) is not credited to either variant.
        let mut sequential_ms = f64::INFINITY;
        let mut parallel_ms = f64::INFINITY;
        let mut sequential = None;
        let mut parallel = None;
        for _ in 0..config.repeats.max(1) {
            let (outcome, ms) = timed_identify(&single_cut, &dfg, &constraints, &model, 0);
            sequential_ms = sequential_ms.min(ms);
            sequential = Some(outcome);
            let (outcome, ms) =
                timed_identify(&single_cut, &dfg, &constraints, &model, config.split_levels);
            parallel_ms = parallel_ms.min(ms);
            parallel = Some(outcome);
        }
        let (sequential, parallel) = (
            sequential.expect("repeats >= 1"),
            parallel.expect("repeats >= 1"),
        );
        let identical = sequential == parallel;
        let cuts = sequential.stats.cuts_considered;
        rows.push(ScalingRow {
            block: dfg.name().to_string(),
            nodes: dfg.node_count(),
            threads: rayon::current_num_threads(),
            split_levels: config.split_levels,
            cuts_considered: cuts,
            sequential_ms,
            parallel_ms,
            sequential_cuts_per_sec: cuts_per_sec(cuts, sequential_ms),
            parallel_cuts_per_sec: cuts_per_sec(parallel.stats.cuts_considered, parallel_ms),
            speedup: if parallel_ms > 0.0 {
                sequential_ms / parallel_ms
            } else {
                0.0
            },
            identical,
        });
    }

    let cross_client_identical = cross_client_check(config, &model);
    let all_identical = cross_client_identical && rows.iter().all(|r| r.identical);
    ScalingReport {
        threads: rayon::current_num_threads(),
        rows,
        cross_client_identical,
        all_identical,
    }
}

/// Drives the other two kernel clients — multicut and the exhaustive oracle — through
/// the same split on small wide blocks and checks the parallel outcome (cuts and
/// statistics) equals the sequential one.
fn cross_client_check(config: &ScalingConfig, model: &DefaultCostModel) -> bool {
    let constraints = Constraints::new(4, 2);
    let multicut = ise_core::engine::MultiCut::new(2);
    let oracle = ise_core::engine::Exhaustive::new();
    let mut identical = true;
    for (identifier, nodes) in [(&multicut as &dyn Identifier, 12usize), (&oracle, 12)] {
        let dfg = random::wide_dfg(nodes, config.seed ^ 0xC7055);
        let sequential = identifier.identify_split(&dfg, None, &constraints, model, 0);
        let parallel =
            identifier.identify_split(&dfg, None, &constraints, model, config.split_levels);
        identical &= sequential == parallel;
    }
    identical
}

/// Renders the report as the `BENCH_search.json` payload.
#[must_use]
pub fn to_json(report: &ScalingReport) -> String {
    serde::json::to_string_pretty(report)
}

/// Renders the rows as a Markdown table.
#[must_use]
pub fn markdown(report: &ScalingReport) -> String {
    let mut out = String::from(
        "| block | nodes | cuts | seq ms | par ms | speedup | cuts/s (par) | identical |\n\
         |---|---:|---:|---:|---:|---:|---:|---|\n",
    );
    for r in &report.rows {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {:.1} | {:.2}x | {:.0} | {} |\n",
            r.block,
            r.nodes,
            r.cuts_considered,
            r.sequential_ms,
            r.parallel_ms,
            r.speedup,
            r.parallel_cuts_per_sec,
            r.identical
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny configuration so the debug-mode test stays fast.
    fn tiny() -> ScalingConfig {
        ScalingConfig {
            block_sizes: vec![12, 14],
            split_levels: 3,
            ..ScalingConfig::default()
        }
    }

    #[test]
    fn parallel_and_sequential_outputs_are_identical() {
        let report = run(&tiny());
        assert_eq!(report.rows.len(), 2);
        assert!(report.all_identical, "{report:?}");
        assert!(report.cross_client_identical);
        for row in &report.rows {
            assert!(row.identical, "{row:?}");
            assert!(row.cuts_considered > 0);
            assert!(row.sequential_ms >= 0.0);
        }
    }

    #[test]
    fn json_payload_carries_the_required_fields() {
        let report = run(&tiny());
        let json = to_json(&report);
        for field in [
            "\"nodes\"",
            "\"threads\"",
            "\"cuts_considered\"",
            "\"sequential_ms\"",
            "\"parallel_ms\"",
            "\"sequential_cuts_per_sec\"",
            "\"parallel_cuts_per_sec\"",
            "\"speedup\"",
            "\"all_identical\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let md = markdown(&report);
        assert!(md.lines().count() >= 4);
    }
}
