//! Criterion benchmark behind Fig. 8: run time and search-space size of the single-cut
//! identification algorithm as the basic-block size grows (Nout = 2, unbounded Nin).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ise_core::{Constraints, SingleCutSearch};
use ise_hw::DefaultCostModel;
use ise_workloads::random::{random_dfg, RandomDfgConfig};

fn fig8_search_space(c: &mut Criterion) {
    let model = DefaultCostModel::new();
    let mut group = c.benchmark_group("fig8_search_space");
    group.sample_size(10);
    for nodes in [8usize, 16, 24, 32, 48, 64] {
        let dfg = random_dfg(&RandomDfgConfig::with_nodes(nodes), 42);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &dfg, |b, dfg| {
            b.iter(|| {
                let constraints = Constraints::new(usize::MAX >> 1, 2);
                let search = SingleCutSearch::new(dfg, constraints, &model)
                    .with_exploration_budget(2_000_000);
                std::hint::black_box(search.run().stats.cuts_considered)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig8_search_space);
criterion_main!(benches);
