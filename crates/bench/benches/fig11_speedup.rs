//! Criterion benchmark behind Fig. 11: run time of the end-to-end selection flows
//! (identification + selection of up to 16 instructions) for each compared algorithm on
//! the MediaBench-like trio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ise_bench::fig11::{evaluate, Algorithm, Fig11Config};
use ise_core::Constraints;
use ise_workloads::suite;

fn fig11_speedup(c: &mut Criterion) {
    let config = Fig11Config {
        constraints: vec![Constraints::new(4, 2)],
        max_instructions: 16,
        ..Fig11Config::default()
    };
    let benchmarks = suite::fig11_benchmarks();
    let mut group = c.benchmark_group("fig11_selection_flow");
    group.sample_size(10);
    for program in &benchmarks {
        for algorithm in Algorithm::all() {
            let id = BenchmarkId::new(algorithm.name(), program.name());
            group.bench_with_input(id, program, |b, program| {
                b.iter(|| {
                    std::hint::black_box(evaluate(
                        program,
                        algorithm,
                        Constraints::new(4, 2),
                        &config,
                    ))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig11_speedup);
criterion_main!(benches);
