//! Criterion benchmark for the paper's run-time claim (Section 8): single-cut
//! identification on every bundled kernel block under the paper's constraint sweep
//! finishes in far less than a second per block.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ise_core::{identify_single_cut, Constraints};
use ise_hw::DefaultCostModel;
use ise_workloads::{adpcm, dsp, g721, gsm};

fn identification_runtime(c: &mut Criterion) {
    let model = DefaultCostModel::new();
    let blocks = vec![
        adpcm::decode_kernel(),
        adpcm::encode_kernel(),
        gsm::short_term_filter_kernel(),
        g721::fmult_kernel(),
        dsp::fir_kernel(),
        dsp::idct_kernel(),
    ];
    let mut group = c.benchmark_group("identification_runtime");
    group.sample_size(10);
    for block in &blocks {
        for constraints in [Constraints::new(4, 2), Constraints::new(8, 4)] {
            let id = BenchmarkId::new(
                format!(
                    "Nin{}_Nout{}",
                    constraints.max_inputs, constraints.max_outputs
                ),
                block.name(),
            );
            group.bench_with_input(id, block, |b, block| {
                b.iter(|| std::hint::black_box(identify_single_cut(block, constraints, &model)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, identification_runtime);
criterion_main!(benches);
