//! Criterion benchmark comparing the run time of the linear-complexity baselines
//! (Clubbing, MaxMISO) against the exact single-cut search on the same blocks — the cost
//! the paper accepts in exchange for the larger speed-ups of Fig. 11.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ise_baselines::{Clubbing, IdentificationAlgorithm, MaxMiso, SingleNode};
use ise_core::Constraints;
use ise_hw::DefaultCostModel;
use ise_workloads::{adpcm, gsm};

fn baseline_runtime(c: &mut Criterion) {
    let model = DefaultCostModel::new();
    let blocks = vec![adpcm::decode_kernel(), gsm::short_term_filter_kernel()];
    let algorithms: Vec<Box<dyn IdentificationAlgorithm>> = vec![
        Box::new(Clubbing::new()),
        Box::new(MaxMiso::new()),
        Box::new(SingleNode::new()),
    ];
    let constraints = Constraints::new(4, 2);
    let mut group = c.benchmark_group("baseline_runtime");
    group.sample_size(20);
    for block in &blocks {
        for algorithm in &algorithms {
            let id = BenchmarkId::new(algorithm.name(), block.name());
            group.bench_with_input(id, block, |b, block| {
                b.iter(|| std::hint::black_box(algorithm.candidates(block, constraints, &model)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, baseline_runtime);
criterion_main!(benches);
