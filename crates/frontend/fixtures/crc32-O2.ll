; ModuleID = 'crc32.c'
; unsigned crc32_update(unsigned crc, unsigned char byte) — see crc32-O0.ll.
; At -O2 the 8-iteration loop is fully unrolled into straight-line code.
; clang -O2 -S -emit-llvm -fno-discard-value-names crc32.c
source_filename = "crc32.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

define dso_local i32 @crc32_update(i32 noundef %crc, i8 noundef zeroext %byte) local_unnamed_addr #0 {
entry:
  %conv = zext i8 %byte to i32
  %xor = xor i32 %conv, %crc
  %and = and i32 %xor, 1
  %sub = sub nsw i32 0, %and
  %and1 = and i32 %sub, -306674912
  %shr = lshr i32 %xor, 1
  %xor2 = xor i32 %and1, %shr
  %and.1 = and i32 %xor2, 1
  %sub.1 = sub nsw i32 0, %and.1
  %and1.1 = and i32 %sub.1, -306674912
  %shr.1 = lshr i32 %xor2, 1
  %xor2.1 = xor i32 %and1.1, %shr.1
  %and.2 = and i32 %xor2.1, 1
  %sub.2 = sub nsw i32 0, %and.2
  %and1.2 = and i32 %sub.2, -306674912
  %shr.2 = lshr i32 %xor2.1, 1
  %xor2.2 = xor i32 %and1.2, %shr.2
  %and.3 = and i32 %xor2.2, 1
  %sub.3 = sub nsw i32 0, %and.3
  %and1.3 = and i32 %sub.3, -306674912
  %shr.3 = lshr i32 %xor2.2, 1
  %xor2.3 = xor i32 %and1.3, %shr.3
  %and.4 = and i32 %xor2.3, 1
  %sub.4 = sub nsw i32 0, %and.4
  %and1.4 = and i32 %sub.4, -306674912
  %shr.4 = lshr i32 %xor2.3, 1
  %xor2.4 = xor i32 %and1.4, %shr.4
  %and.5 = and i32 %xor2.4, 1
  %sub.5 = sub nsw i32 0, %and.5
  %and1.5 = and i32 %sub.5, -306674912
  %shr.5 = lshr i32 %xor2.4, 1
  %xor2.5 = xor i32 %and1.5, %shr.5
  %and.6 = and i32 %xor2.5, 1
  %sub.6 = sub nsw i32 0, %and.6
  %and1.6 = and i32 %sub.6, -306674912
  %shr.6 = lshr i32 %xor2.5, 1
  %xor2.6 = xor i32 %and1.6, %shr.6
  %and.7 = and i32 %xor2.6, 1
  %sub.7 = sub nsw i32 0, %and.7
  %and1.7 = and i32 %sub.7, -306674912
  %shr.7 = lshr i32 %xor2.6, 1
  %xor2.7 = xor i32 %and1.7, %shr.7
  ret i32 %xor2.7
}

attributes #0 = { mustprogress nofree norecurse nosync nounwind readnone willreturn uwtable }
