; ModuleID = 'sha1round.c'
; unsigned sha1_round(unsigned a, unsigned b, unsigned c, unsigned d,
;                     unsigned e, unsigned w) {
;   unsigned f = (b & c) | (~b & d);
;   unsigned rot = (a << 5) | (a >> 27);
;   return rot + f + e + w + 0x5A827999u;
; }
; clang -O0 -S -emit-llvm -fno-discard-value-names sha1round.c
source_filename = "sha1round.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

define dso_local i32 @sha1_round(i32 noundef %a, i32 noundef %b, i32 noundef %c, i32 noundef %d, i32 noundef %e, i32 noundef %w) #0 {
entry:
  %a.addr = alloca i32, align 4
  %b.addr = alloca i32, align 4
  %c.addr = alloca i32, align 4
  %d.addr = alloca i32, align 4
  %e.addr = alloca i32, align 4
  %w.addr = alloca i32, align 4
  %f = alloca i32, align 4
  %rot = alloca i32, align 4
  store i32 %a, i32* %a.addr, align 4
  store i32 %b, i32* %b.addr, align 4
  store i32 %c, i32* %c.addr, align 4
  store i32 %d, i32* %d.addr, align 4
  store i32 %e, i32* %e.addr, align 4
  store i32 %w, i32* %w.addr, align 4
  %0 = load i32, i32* %b.addr, align 4
  %1 = load i32, i32* %c.addr, align 4
  %and = and i32 %0, %1
  %2 = load i32, i32* %b.addr, align 4
  %neg = xor i32 %2, -1
  %3 = load i32, i32* %d.addr, align 4
  %and1 = and i32 %neg, %3
  %or = or i32 %and, %and1
  store i32 %or, i32* %f, align 4
  %4 = load i32, i32* %a.addr, align 4
  %shl = shl i32 %4, 5
  %5 = load i32, i32* %a.addr, align 4
  %shr = lshr i32 %5, 27
  %or2 = or i32 %shl, %shr
  store i32 %or2, i32* %rot, align 4
  %6 = load i32, i32* %rot, align 4
  %7 = load i32, i32* %f, align 4
  %add = add i32 %6, %7
  %8 = load i32, i32* %e.addr, align 4
  %add3 = add i32 %add, %8
  %9 = load i32, i32* %w.addr, align 4
  %add4 = add i32 %add3, %9
  %add5 = add i32 %add4, 1518500249
  ret i32 %add5
}

attributes #0 = { noinline nounwind optnone uwtable }
