; ModuleID = 'sum.c'
; A profiled accumulation loop — the one bundled fixture carrying !prof metadata:
; int sum_weighted(int n, const int *a) {
;   int acc = 0;
;   for (int i = 0; i < n; i++) acc += (a[i] * 3) ^ acc;
;   return acc;
; }
; clang -O1 -fprofile-instr-use=sum.profdata -S -emit-llvm -fno-discard-value-names sum.c
; Profile: 50 calls, loop trip count 20 → entry ×50, for.body ×1000, for.end ×50.
source_filename = "sum.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

define dso_local i32 @sum_weighted(i32 noundef %n, i32* nocapture noundef readonly %a) local_unnamed_addr #0 !prof !36 {
entry:
  %cmp5 = icmp sgt i32 %n, 0
  br i1 %cmp5, label %for.body, label %for.end, !prof !37

for.body:
  %i.07 = phi i32 [ %inc, %for.body ], [ 0, %entry ]
  %acc.06 = phi i32 [ %add, %for.body ], [ 0, %entry ]
  %idxprom = sext i32 %i.07 to i64
  %arrayidx = getelementptr inbounds i32, i32* %a, i64 %idxprom
  %0 = load i32, i32* %arrayidx, align 4
  %mul = mul nsw i32 %0, 3
  %xor = xor i32 %mul, %acc.06
  %add = add nsw i32 %xor, %acc.06
  %inc = add nuw nsw i32 %i.07, 1
  %exitcond.not = icmp eq i32 %inc, %n
  br i1 %exitcond.not, label %for.end, label %for.body, !prof !38

for.end:
  %acc.0.lcssa = phi i32 [ 0, %entry ], [ %add, %for.body ]
  ret i32 %acc.0.lcssa
}

attributes #0 = { nofree norecurse nosync nounwind readonly uwtable }

!36 = !{!"function_entry_count", i64 50}
!37 = !{!"branch_weights", i32 50, i32 0}
!38 = !{!"branch_weights", i32 50, i32 950}
