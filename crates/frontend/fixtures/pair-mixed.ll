; Two functions in one module — the corpus front-end slices this into one
; program per define (`pair-mixed.mac3`, `pair-mixed.mixbits`); each slice must
; be byte-identical to lowering that function's source on its own.
; clang -O1 -S -emit-llvm -fno-discard-value-names pair.c
source_filename = "pair.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

define dso_local i32 @mac3(i32 noundef %a, i32 noundef %b, i32 noundef %c) local_unnamed_addr #0 {
entry:
  %mul = mul nsw i32 %a, %b
  %add = add nsw i32 %mul, %c
  %shl = shl i32 %add, 2
  %sum = add nsw i32 %shl, %mul
  ret i32 %sum
}

define dso_local i32 @mixbits(i32 noundef %x, i32 noundef %y) local_unnamed_addr #0 {
entry:
  %xor = xor i32 %x, %y
  %shr = lshr i32 %xor, 3
  %and = and i32 %shr, 151
  %or = or i32 %and, %x
  %not = xor i32 %or, -1
  ret i32 %not
}

attributes #0 = { mustprogress nofree norecurse nosync nounwind willreturn uwtable }
