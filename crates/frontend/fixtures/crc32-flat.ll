; Four unrolled bit-steps of the table-less CRC-32, mirroring the hand-built
; `crc32_kernel` of crates/workloads (crypto.rs) node for node:
;   bit = crc & 1; mask = -bit; masked = mask & 0xEDB88320;
;   shifted = crc >> 1; crc = shifted ^ masked;   (× 4)
; Used by the differential test proving the front-end lowering produces the
; same selection result as the hand-built DFG.
source_filename = "crc32_flat.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

define dso_local i32 @crc32_bits(i32 noundef %crc) local_unnamed_addr #0 {
entry:
  %bit0 = and i32 %crc, 1
  %mask0 = sub i32 0, %bit0
  %masked0 = and i32 %mask0, -306674912
  %shifted0 = lshr i32 %crc, 1
  %crc0 = xor i32 %shifted0, %masked0
  %bit1 = and i32 %crc0, 1
  %mask1 = sub i32 0, %bit1
  %masked1 = and i32 %mask1, -306674912
  %shifted1 = lshr i32 %crc0, 1
  %crc1 = xor i32 %shifted1, %masked1
  %bit2 = and i32 %crc1, 1
  %mask2 = sub i32 0, %bit2
  %masked2 = and i32 %mask2, -306674912
  %shifted2 = lshr i32 %crc1, 1
  %crc2 = xor i32 %shifted2, %masked2
  %bit3 = and i32 %crc2, 1
  %mask3 = sub i32 0, %bit3
  %masked3 = and i32 %mask3, -306674912
  %shifted3 = lshr i32 %crc2, 1
  %crc3 = xor i32 %shifted3, %masked3
  ret i32 %crc3
}

attributes #0 = { mustprogress nofree norecurse nosync nounwind readnone willreturn uwtable }
