; ModuleID = 'crc32.c'
; unsigned crc32_update(unsigned crc, unsigned char byte) — see crc32-O0.ll.
; clang -O1 -S -emit-llvm -fno-discard-value-names crc32.c
source_filename = "crc32.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

define dso_local i32 @crc32_update(i32 noundef %crc, i8 noundef zeroext %byte) local_unnamed_addr #0 {
entry:
  %conv = zext i8 %byte to i32
  %xor = xor i32 %conv, %crc
  br label %for.body

for.body:
  %i.07 = phi i32 [ 0, %entry ], [ %inc, %for.body ]
  %crc.addr.06 = phi i32 [ %xor, %entry ], [ %xor2, %for.body ]
  %and = and i32 %crc.addr.06, 1
  %sub = sub nsw i32 0, %and
  %and1 = and i32 %sub, -306674912
  %shr = lshr i32 %crc.addr.06, 1
  %xor2 = xor i32 %and1, %shr
  %inc = add nuw nsw i32 %i.07, 1
  %exitcond.not = icmp eq i32 %inc, 8
  br i1 %exitcond.not, label %for.end, label %for.body

for.end:
  ret i32 %xor2
}

attributes #0 = { mustprogress nofree norecurse nosync nounwind readnone willreturn uwtable }
