; ModuleID = 'sha1round.c'
; unsigned sha1_round(unsigned a, unsigned b, unsigned c, unsigned d,
;                     unsigned e, unsigned w) — see sha1round-O0.ll.
; At -O2 instcombine reassociates the additions and rewrites the round
; function (b & c) | (~b & d) into ((c ^ d) & b) ^ d.
; clang -O2 -S -emit-llvm -fno-discard-value-names sha1round.c
source_filename = "sha1round.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

define dso_local i32 @sha1_round(i32 noundef %a, i32 noundef %b, i32 noundef %c, i32 noundef %d, i32 noundef %e, i32 noundef %w) local_unnamed_addr #0 {
entry:
  %xor = xor i32 %c, %d
  %and = and i32 %xor, %b
  %or = xor i32 %and, %d
  %shl = shl i32 %a, 5
  %shr = lshr i32 %a, 27
  %or2 = or i32 %shr, %shl
  %add = add i32 %or, 1518500249
  %add3 = add i32 %add, %or2
  %add4 = add i32 %add3, %e
  %add5 = add i32 %add4, %w
  ret i32 %add5
}

attributes #0 = { mustprogress nofree norecurse nosync nounwind readnone willreturn uwtable }
