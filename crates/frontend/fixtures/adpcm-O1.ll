; ModuleID = 'adpcm.c'
; One IMA ADPCM decode step with a step-size table lookup and output clamping:
; int adpcm_decode_step(int valpred, int index, int delta) {
;   int step = stepsizeTable[index];
;   int vpdiff = step >> 3;
;   if (delta & 4) vpdiff += step;
;   if (delta & 2) vpdiff += step >> 1;
;   if (delta & 1) vpdiff += step >> 2;
;   if (delta & 8) valpred -= vpdiff; else valpred += vpdiff;
;   if (valpred > 32767) valpred = 32767;
;   else if (valpred < -32768) valpred = -32768;
;   return valpred;
; }
; clang -O1 -S -emit-llvm -fno-discard-value-names adpcm.c
source_filename = "adpcm.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

@stepsizeTable = dso_local local_unnamed_addr constant [89 x i32] [i32 7, i32 8, i32 9, i32 10, i32 11, i32 12, i32 13, i32 14, i32 16, i32 17, i32 19, i32 21, i32 23, i32 25, i32 28, i32 31, i32 34, i32 37, i32 41, i32 45, i32 50, i32 55, i32 60, i32 66, i32 73, i32 80, i32 88, i32 97, i32 107, i32 118, i32 130, i32 143, i32 157, i32 173, i32 190, i32 209, i32 230, i32 253, i32 279, i32 307, i32 337, i32 371, i32 408, i32 449, i32 494, i32 544, i32 598, i32 658, i32 724, i32 796, i32 876, i32 963, i32 1060, i32 1166, i32 1282, i32 1411, i32 1552, i32 1707, i32 1878, i32 2066, i32 2272, i32 2499, i32 2749, i32 3024, i32 3327, i32 3660, i32 4026, i32 4428, i32 4871, i32 5358, i32 5894, i32 6484, i32 7132, i32 7845, i32 8630, i32 9493, i32 10442, i32 11487, i32 12635, i32 13899, i32 15289, i32 16818, i32 18500, i32 20350, i32 22385, i32 24623, i32 27086, i32 29794, i32 32767], align 16

define dso_local i32 @adpcm_decode_step(i32 noundef %valpred, i32 noundef %index, i32 noundef %delta) local_unnamed_addr #0 {
entry:
  %idxprom = sext i32 %index to i64
  %arrayidx = getelementptr inbounds [89 x i32], [89 x i32]* @stepsizeTable, i64 0, i64 %idxprom
  %step = load i32, i32* %arrayidx, align 4
  %shr = ashr i32 %step, 3
  %and = and i32 %delta, 4
  %tobool.not = icmp eq i32 %and, 0
  %add = add nsw i32 %shr, %step
  %vpdiff.0 = select i1 %tobool.not, i32 %shr, i32 %add
  %and1 = and i32 %delta, 2
  %tobool2.not = icmp eq i32 %and1, 0
  %shr3 = ashr i32 %step, 1
  %add4 = add nsw i32 %vpdiff.0, %shr3
  %vpdiff.1 = select i1 %tobool2.not, i32 %vpdiff.0, i32 %add4
  %and5 = and i32 %delta, 1
  %tobool6.not = icmp eq i32 %and5, 0
  %shr7 = ashr i32 %step, 2
  %add8 = add nsw i32 %vpdiff.1, %shr7
  %vpdiff.2 = select i1 %tobool6.not, i32 %vpdiff.1, i32 %add8
  %and9 = and i32 %delta, 8
  %tobool10.not = icmp eq i32 %and9, 0
  %sub = sub nsw i32 %valpred, %vpdiff.2
  %add11 = add nsw i32 %valpred, %vpdiff.2
  %valpred.0 = select i1 %tobool10.not, i32 %add11, i32 %sub
  %cmp12 = icmp sgt i32 %valpred.0, 32767
  %cmp14 = icmp slt i32 %valpred.0, -32768
  %valpred.1 = select i1 %cmp14, i32 -32768, i32 %valpred.0
  %valpred.2 = select i1 %cmp12, i32 32767, i32 %valpred.1
  ret i32 %valpred.2
}

attributes #0 = { mustprogress nofree norecurse nosync nounwind readonly willreturn uwtable }
