; ModuleID = 'crc32.c'
; unsigned crc32_update(unsigned crc, unsigned char byte) {
;   crc = crc ^ byte;
;   for (int i = 0; i < 8; i++) {
;     unsigned mask = -(crc & 1u);
;     crc = (crc >> 1) ^ (0xEDB88320u & mask);
;   }
;   return crc;
; }
; clang -O0 -S -emit-llvm -fno-discard-value-names crc32.c
source_filename = "crc32.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

define dso_local i32 @crc32_update(i32 noundef %crc, i8 noundef zeroext %byte) #0 {
entry:
  %crc.addr = alloca i32, align 4
  %byte.addr = alloca i8, align 1
  %i = alloca i32, align 4
  %mask = alloca i32, align 4
  store i32 %crc, i32* %crc.addr, align 4
  store i8 %byte, i8* %byte.addr, align 1
  %0 = load i8, i8* %byte.addr, align 1
  %conv = zext i8 %0 to i32
  %1 = load i32, i32* %crc.addr, align 4
  %xor = xor i32 %1, %conv
  store i32 %xor, i32* %crc.addr, align 4
  store i32 0, i32* %i, align 4
  br label %for.cond

for.cond:
  %2 = load i32, i32* %i, align 4
  %cmp = icmp slt i32 %2, 8
  br i1 %cmp, label %for.body, label %for.end

for.body:
  %3 = load i32, i32* %crc.addr, align 4
  %and = and i32 %3, 1
  %sub = sub i32 0, %and
  store i32 %sub, i32* %mask, align 4
  %4 = load i32, i32* %crc.addr, align 4
  %shr = lshr i32 %4, 1
  %5 = load i32, i32* %mask, align 4
  %and1 = and i32 -306674912, %5
  %xor2 = xor i32 %shr, %and1
  store i32 %xor2, i32* %crc.addr, align 4
  br label %for.inc

for.inc:
  %6 = load i32, i32* %i, align 4
  %inc = add nsw i32 %6, 1
  store i32 %inc, i32* %i, align 4
  br label %for.cond

for.end:
  %7 = load i32, i32* %crc.addr, align 4
  ret i32 %7
}

attributes #0 = { noinline nounwind optnone uwtable }
