; ModuleID = 'sha1round.c'
; unsigned sha1_round(unsigned a, unsigned b, unsigned c, unsigned d,
;                     unsigned e, unsigned w) — see sha1round-O0.ll.
; clang -O1 -S -emit-llvm -fno-discard-value-names sha1round.c
source_filename = "sha1round.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

define dso_local i32 @sha1_round(i32 noundef %a, i32 noundef %b, i32 noundef %c, i32 noundef %d, i32 noundef %e, i32 noundef %w) local_unnamed_addr #0 {
entry:
  %and = and i32 %c, %b
  %neg = xor i32 %b, -1
  %and1 = and i32 %neg, %d
  %or = or i32 %and, %and1
  %shl = shl i32 %a, 5
  %shr = lshr i32 %a, 27
  %or2 = or i32 %shr, %shl
  %add = add i32 %or, %or2
  %add3 = add i32 %add, %e
  %add4 = add i32 %add3, %w
  %add5 = add i32 %add4, 1518500249
  ret i32 %add5
}

attributes #0 = { mustprogress nofree norecurse nosync nounwind readnone willreturn uwtable }
