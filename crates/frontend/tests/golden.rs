//! Fixture-based golden parse tests: every bundled `.ll` parses, lowers and
//! validates, selected fixtures have known graph shapes, and malformed inputs
//! report precise line/column errors.

use ise_frontend::{parse_and_lower, parse_and_lower_functions, parse_module};
use ise_ir::{OpaqueOp, Opcode};
use std::fs;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture(name: &str) -> String {
    fs::read_to_string(fixtures_dir().join(name)).expect("fixture exists")
}

#[test]
fn all_fixtures_parse_lower_and_validate() {
    let mut names: Vec<String> = fs::read_dir(fixtures_dir())
        .expect("fixtures directory exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".ll"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 6,
        "at least 6 bundled fixtures, found {names:?}"
    );
    for name in names {
        let source = fixture(&name);
        let program = parse_and_lower(name.trim_end_matches(".ll"), &source)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        program
            .validate()
            .unwrap_or_else(|e| panic!("{name} lowered to an invalid program: {e}"));
        assert!(
            !program.blocks().is_empty(),
            "{name} lowered to an empty program"
        );
    }
}

#[test]
fn multi_function_modules_slice_into_per_function_programs() {
    let source = fixture("pair-mixed.ll");
    // Whole-module lowering (`run`/`sweep`) still merges both functions…
    let merged = parse_and_lower("pair-mixed", &source).unwrap();
    assert_eq!(merged.blocks().len(), 2);
    // …while the corpus entry point slices one program per define.
    let slices = parse_and_lower_functions("pair-mixed", &source).unwrap();
    assert_eq!(slices.len(), 2);
    assert_eq!(slices[0].name(), "pair-mixed.mac3");
    assert_eq!(slices[1].name(), "pair-mixed.mixbits");
    // Each slice is identical to lowering that function's source alone.
    let split = source
        .find("define dso_local i32 @mixbits")
        .expect("fixture has @mixbits");
    let alone = vec![
        parse_and_lower("pair-mixed.mac3", &source[..split]).unwrap(),
        parse_and_lower("pair-mixed.mixbits", &source[split..]).unwrap(),
    ];
    assert_eq!(slices, alone);
    // A single-function module keeps its module-level name through either entry point.
    let single = parse_and_lower_functions("pair-mixed.mixbits", &source[split..]).unwrap();
    assert_eq!(single, vec![alone[1].clone()]);
}

#[test]
fn crc32_o2_is_straight_line_with_known_shape() {
    let program = parse_and_lower("crc32-O2", &fixture("crc32-O2.ll")).unwrap();
    assert_eq!(program.blocks().len(), 1);
    let dfg = &program.blocks()[0];
    assert_eq!(dfg.name(), "crc32_update.entry");
    // zext + xor + 8 × (and, neg, and, lshr, xor) = 42 nodes, all AFU-legal.
    assert_eq!(dfg.node_count(), 42);
    assert_eq!(dfg.input_count(), 2);
    assert_eq!(dfg.output_count(), 1);
    assert_eq!(dfg.count_opcode(Opcode::Neg), 8, "sub 0, x lowers to neg");
    assert!(dfg.iter_nodes().all(|(_, n)| !n.is_forbidden_in_afu()));
}

#[test]
fn crc32_o0_materialises_memory_traffic_as_forbidden_nodes() {
    let program = parse_and_lower("crc32-O0", &fixture("crc32-O0.ll")).unwrap();
    // entry, for.cond, for.body, for.inc, for.end.
    assert_eq!(program.blocks().len(), 5);
    let entry = &program.blocks()[0];
    assert_eq!(entry.name(), "crc32_update.entry");
    assert_eq!(entry.count_opcode(Opcode::Opaque(OpaqueOp::Alloca)), 4);
    assert_eq!(entry.count_opcode(Opcode::Store), 4);
    assert_eq!(entry.count_opcode(Opcode::Load), 2);
    // The alloca addresses used by other blocks (crc.addr, i, mask — byte.addr is
    // entry-only) must surface as block outputs.
    let outputs: Vec<&str> = entry.iter_outputs().map(|o| o.name.as_str()).collect();
    assert!(outputs.contains(&"crc.addr"), "outputs: {outputs:?}");
    assert!(outputs.contains(&"i"), "outputs: {outputs:?}");
    assert!(outputs.contains(&"mask"), "outputs: {outputs:?}");
    assert!(!outputs.contains(&"byte.addr"), "outputs: {outputs:?}");
    let body = &program.blocks()[2];
    assert_eq!(body.name(), "crc32_update.for.body");
    assert_eq!(body.count_opcode(Opcode::Neg), 1);
}

#[test]
fn crc32_o1_loop_carried_values_become_inputs_and_outputs() {
    let program = parse_and_lower("crc32-O1", &fixture("crc32-O1.ll")).unwrap();
    let body = program
        .blocks()
        .iter()
        .find(|b| b.name() == "crc32_update.for.body")
        .expect("loop body present");
    // φs i.07 and crc.addr.06 are inputs; xor2 and inc feed the back-edge φs and
    // the exit block, so they are outputs together with the branch condition.
    assert!(body.input_count() >= 2);
    let output_names: Vec<&str> = body.iter_outputs().map(|o| o.name.as_str()).collect();
    assert!(output_names.contains(&"xor2"), "outputs: {output_names:?}");
    assert!(output_names.contains(&"inc"), "outputs: {output_names:?}");
    assert!(
        output_names.contains(&"exitcond.not"),
        "the branch condition is consumed by the terminator: {output_names:?}"
    );
}

#[test]
fn adpcm_gep_and_call_free_table_lookup_lowers_with_forbidden_nodes() {
    let program = parse_and_lower("adpcm-O1", &fixture("adpcm-O1.ll")).unwrap();
    let dfg = &program.blocks()[0];
    assert_eq!(dfg.count_opcode(Opcode::Opaque(OpaqueOp::Gep)), 1);
    assert_eq!(dfg.count_opcode(Opcode::Load), 1);
    assert_eq!(dfg.count_opcode(Opcode::Select), 6);
    // @stepsizeTable is an address produced outside the block: an input.
    assert!(dfg.iter_inputs().any(|(_, i)| i.name == "@stepsizeTable"));
}

#[test]
fn prof_branch_weights_become_block_exec_counts() {
    let program = parse_and_lower("sum-prof", &fixture("sum-prof.ll")).unwrap();
    let by_name = |name: &str| {
        program
            .blocks()
            .iter()
            .find(|b| b.name() == name)
            .unwrap_or_else(|| panic!("block {name} present"))
    };
    // entry has no weighted incoming edge → function_entry_count; for.body receives
    // 50 from entry's then-edge plus 950 from its own back-edge; for.end receives
    // 0 from entry's else-edge plus 50 from the loop exit.
    assert_eq!(by_name("sum_weighted.entry").exec_count(), 50);
    assert_eq!(by_name("sum_weighted.for.body").exec_count(), 1000);
    assert_eq!(by_name("sum_weighted.for.end").exec_count(), 50);
}

#[test]
fn modules_without_prof_default_to_exec_count_one() {
    let program = parse_and_lower("crc32-O1", &fixture("crc32-O1.ll")).unwrap();
    assert!(program.blocks().iter().all(|b| b.exec_count() == 1));
}

#[test]
fn malformed_prof_metadata_is_dropped_not_fatal() {
    // Wrong arity (three weights on a two-successor branch), a dangling reference,
    // and a kind mismatch (branch weights on the define) must all lower cleanly
    // with every count at its default.
    let source = r#"
define i32 @f(i32 %x) !prof !1 {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %a, label %b, !prof !0
a:
  br label %b, !prof !9
b:
  %r = phi i32 [ 1, %entry ], [ 2, %a ]
  ret i32 %r
}

!0 = !{!"branch_weights", i32 1, i32 2, i32 3}
!1 = !{!"branch_weights", i32 4, i32 5}
"#;
    let program = parse_and_lower("malformed", source).unwrap();
    assert!(program.blocks().iter().all(|b| b.exec_count() == 1));
}

#[test]
fn intrinsic_calls_map_to_vocabulary_ops() {
    let source = r#"
declare i32 @llvm.smax.i32(i32, i32)
declare i32 @llvm.abs.i32(i32, i1)

define i32 @clamp0(i32 %x, i32 %y) {
entry:
  %m = call i32 @llvm.smax.i32(i32 %x, i32 %y)
  %a = call i32 @llvm.abs.i32(i32 %m, i1 false)
  %r = call i32 @external(i32 %a)
  call void @sink(i32 %r)
  ret i32 %r
}
"#;
    let program = parse_and_lower("intrinsics", source).unwrap();
    let dfg = &program.blocks()[0];
    assert_eq!(dfg.count_opcode(Opcode::Max), 1);
    assert_eq!(dfg.count_opcode(Opcode::Abs), 1);
    assert_eq!(dfg.count_opcode(Opcode::Opaque(OpaqueOp::Call)), 1);
    assert_eq!(dfg.count_opcode(Opcode::Opaque(OpaqueOp::CallVoid)), 1);
    // The abs intrinsic's i1 poison flag is dropped.
    let (_, abs) = dfg
        .iter_nodes()
        .find(|(_, n)| n.opcode == Opcode::Abs)
        .unwrap();
    assert_eq!(abs.operands.len(), 1);
}

#[test]
fn unsigned_comparisons_swap_operands() {
    let source = r#"
define i1 @cmps(i32 %a, i32 %b) {
entry:
  %gt = icmp ugt i32 %a, %b
  %le = icmp ule i32 %a, %b
  %x = and i1 %gt, %le
  ret i1 %x
}
"#;
    let program = parse_and_lower("cmps", source).unwrap();
    let dfg = &program.blocks()[0];
    assert_eq!(dfg.count_opcode(Opcode::Ltu), 1);
    assert_eq!(dfg.count_opcode(Opcode::Geu), 1);
    // ugt a b ⇒ ltu b a: the first operand is %b (input 1).
    let (_, ltu) = dfg
        .iter_nodes()
        .find(|(_, n)| n.opcode == Opcode::Ltu)
        .unwrap();
    assert_eq!(
        ltu.operands[0],
        ise_ir::Operand::Input(ise_ir::PortId::new(1))
    );
}

#[test]
fn float_types_are_rejected_with_position() {
    let source = "define float @f(float %x) {\nentry:\n  ret float %x\n}\n";
    let err = parse_module(source).unwrap_err();
    assert_eq!(err.line, 1);
    assert!(err.message.contains("floating-point"), "{}", err.message);
}

#[test]
fn vector_types_are_rejected() {
    let source = "define i32 @f(<4 x i32> %v) {\nentry:\n  ret i32 0\n}\n";
    let err = parse_module(source).unwrap_err();
    assert_eq!(err.line, 1);
    assert!(err.message.contains("vector"), "{}", err.message);
}

#[test]
fn stray_characters_are_rejected_with_position() {
    let source = "define i32 @f() {\nentry:\n  %x = add i32 1, ?\n  ret i32 %x\n}\n";
    let err = parse_module(source).unwrap_err();
    assert_eq!(err.line, 3);
    assert_eq!(err.column, 19);
}

#[test]
fn missing_terminator_is_rejected() {
    let source = "define i32 @f(i32 %x) {\nentry:\n  %y = add i32 %x, 1\n}\n";
    let err = parse_module(source).unwrap_err();
    assert!(
        err.message.contains("instruction") || err.message.contains("terminator"),
        "{}",
        err.message
    );
}

#[test]
fn indirect_calls_are_rejected() {
    let source = "define i32 @f(i32 %x) {\nentry:\n  %r = call i32 %x(i32 1)\n  ret i32 %r\n}\n";
    let err = parse_module(source).unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.message.contains("indirect"), "{}", err.message);
}

#[test]
fn constant_expressions_are_rejected() {
    let source = "define i32 @f() {\nentry:\n  %v = load i32, i32* getelementptr inbounds ([4 x i32], [4 x i32]* @t, i64 0, i64 1)\n  ret i32 %v\n}\n";
    let err = parse_module(source).unwrap_err();
    assert_eq!(err.line, 3);
    assert!(
        err.message.contains("constant expressions"),
        "{}",
        err.message
    );
}
