//! Round-trip property suite: `print(parse(x))` is a fixpoint.
//!
//! The parser normalises away everything outside the supported subset (flags,
//! attributes, alignment, metadata), and the printer emits exactly that
//! normalised subset. So while `print(parse(src))` need not equal `src`
//! byte-for-byte, a second trip must be the identity: for every accepted
//! source, `print(parse(print(parse(src))))` equals `print(parse(src))`.
//! The suite checks this on every bundled fixture and on seeded random
//! straight-line modules.

use ise_frontend::{parse_module, print_module};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Asserts the canonical form is a fixpoint of `print ∘ parse` and returns it.
fn assert_roundtrip(label: &str, source: &str) -> String {
    let module = parse_module(source).unwrap_or_else(|e| panic!("{label}: parse failed: {e}"));
    let printed = print_module(&module);
    let reparsed = parse_module(&printed)
        .unwrap_or_else(|e| panic!("{label}: reparse failed: {e}\n{printed}"));
    let reprinted = print_module(&reparsed);
    assert_eq!(
        printed, reprinted,
        "{label}: print ∘ parse is not idempotent"
    );
    printed
}

#[test]
fn fixtures_roundtrip_byte_identical() {
    let mut names: Vec<String> = fs::read_dir(fixtures_dir())
        .expect("fixtures directory exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".ll"))
        .collect();
    names.sort();
    assert!(names.len() >= 6);
    for name in names {
        let source = fs::read_to_string(fixtures_dir().join(&name)).unwrap();
        assert_roundtrip(&name, &source);
    }
}

/// A generated straight-line function: binary ops, comparisons, selects and
/// casts over i32 values, closed under the set of names defined so far.
fn random_module(rng: &mut SmallRng) -> String {
    const BINOPS: &[&str] = &[
        "add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr", "sdiv", "udiv", "srem",
        "urem",
    ];
    const PREDS: &[&str] = &[
        "eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge",
    ];
    let nparams = rng.gen_range(1..4usize);
    let params: Vec<String> = (0..nparams).map(|i| format!("p{i}")).collect();
    let mut avail: Vec<String> = params.clone();
    let mut body = String::new();
    let ninsts = rng.gen_range(1..24usize);
    for i in 0..ninsts {
        let name = format!("v{i}");
        // Operand: an existing value or an immediate.
        let operand = |rng: &mut SmallRng, avail: &[String]| -> String {
            if rng.gen_range(0..4u32) == 0 {
                format!("{}", rng.gen_range(-128..128i64))
            } else {
                format!("%{}", avail[rng.gen_range(0..avail.len())])
            }
        };
        let line = match rng.gen_range(0..4u32) {
            0 | 1 => {
                let op = BINOPS[rng.gen_range(0..BINOPS.len())];
                let a = operand(rng, &avail);
                let b = operand(rng, &avail);
                format!("  %{name} = {op} i32 {a}, {b}\n")
            }
            2 => {
                let pred = PREDS[rng.gen_range(0..PREDS.len())];
                let a = operand(rng, &avail);
                let b = operand(rng, &avail);
                // Keep everything i32-typed: widen the i1 right back.
                body.push_str(&format!("  %{name}.c = icmp {pred} i32 {a}, {b}\n"));
                format!("  %{name} = zext i1 %{name}.c to i32\n")
            }
            _ => {
                let a = operand(rng, &avail);
                body.push_str(&format!("  %{name}.t = trunc i32 {a} to i8\n"));
                format!("  %{name} = sext i8 %{name}.t to i32\n")
            }
        };
        body.push_str(&line);
        avail.push(name);
    }
    let ret = &avail[avail.len() - 1];
    let sig: Vec<String> = params.iter().map(|p| format!("i32 %{p}")).collect();
    format!(
        "define i32 @gen({}) {{\nentry:\n{body}  ret i32 %{ret}\n}}\n",
        sig.join(", ")
    )
}

#[test]
fn random_modules_roundtrip() {
    for seed in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let source = random_module(&mut rng);
        let printed = assert_roundtrip(&format!("seed {seed}"), &source);
        // The generator already emits canonical text, so the first trip is
        // also the identity — a stronger check we get for free here.
        assert_eq!(source, printed, "seed {seed}: canonical source changed");
    }
}

#[test]
fn printer_normalises_flags_and_metadata() {
    let source = "define i32 @f(i32 noundef %x) local_unnamed_addr #0 {\n\
                  entry:\n  %y = add nsw i32 %x, 1, !dbg !7\n  \
                  %z = mul nuw nsw i32 %y, %y\n  ret i32 %z\n}\n";
    let printed = assert_roundtrip("flags", source);
    assert!(!printed.contains("nsw"), "{printed}");
    assert!(!printed.contains("noundef"), "{printed}");
    assert!(!printed.contains("!dbg"), "{printed}");
}

#[test]
fn prof_metadata_survives_the_roundtrip_with_canonical_numbering() {
    // Sparse, out-of-order metadata ids must come back dense and in first-use
    // order: the entry count gets !0, the branch weights !1.
    let source = "define i32 @f(i32 %x) !prof !42 {\n\
                  entry:\n  %c = icmp sgt i32 %x, 0\n  \
                  br i1 %c, label %a, label %b, !prof !7\n\
                  a:\n  ret i32 1\n\
                  b:\n  ret i32 2\n}\n\n\
                  !7 = !{!\"branch_weights\", i32 9, i32 1}\n\
                  !42 = !{!\"function_entry_count\", i64 500}\n";
    let printed = assert_roundtrip("prof", source);
    assert!(printed.contains(") !prof !0 {"), "{printed}");
    assert!(printed.contains("label %b, !prof !1"), "{printed}");
    assert!(
        printed.contains("!0 = !{!\"function_entry_count\", i64 500}"),
        "{printed}"
    );
    assert!(
        printed.contains("!1 = !{!\"branch_weights\", i32 9, i32 1}"),
        "{printed}"
    );
}
