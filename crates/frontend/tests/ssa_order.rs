//! Regression tests for the SSA-order insertion audit: the front-end lowers
//! instructions in program order, which for valid SSA keeps the `Dfg`
//! def-before-use invariant (and therefore the insertion-order-is-topo-order
//! property every `topo` traversal relies on). φ-nodes — the only legal
//! intra-block forward references in LLVM — are lowered to block inputs, never
//! nodes, so they cannot create cycles. Malformed SSA must surface as a
//! positioned [`ise_frontend::FrontendError`], never a panic.

use ise_frontend::parse_and_lower;
use ise_ir::Operand;

#[test]
fn lowered_fixtures_satisfy_insertion_order_topo_invariant() {
    for name in ["crc32-O0", "crc32-O1", "crc32-O2", "adpcm-O1"] {
        let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(format!("{name}.ll"));
        let source = std::fs::read_to_string(path).unwrap();
        let program = parse_and_lower(name, &source).unwrap();
        for dfg in program.blocks() {
            for (id, node) in dfg.iter_nodes() {
                for op in &node.operands {
                    if let Operand::Node(src) = op {
                        assert!(
                            src.index() < id.index(),
                            "{name}/{}: node {id:?} consumes later node {src:?}",
                            dfg.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn use_before_def_in_one_block_is_a_positioned_error() {
    // %y is used on line 3 but defined on line 4: invalid SSA (a non-φ use
    // must be dominated by its definition), not a forward reference to lower.
    let source = "define i32 @f(i32 %x) {\n\
                  entry:\n  \
                  %a = add i32 %x, %y\n  \
                  %y = mul i32 %x, 2\n  \
                  ret i32 %a\n}\n";
    let err = parse_and_lower("bad", source).unwrap_err();
    assert_eq!(err.line, 3, "{err}");
    assert!(err.message.contains("before its definition"), "{err}");
    assert!(err.message.contains("%y"), "{err}");
}

#[test]
fn self_referential_instruction_is_a_positioned_error() {
    // A value defined in terms of itself is the degenerate cycle case.
    let source = "define i32 @f(i32 %x) {\n\
                  entry:\n  \
                  %a = add i32 %a, %x\n  \
                  ret i32 %a\n}\n";
    let err = parse_and_lower("cycle", source).unwrap_err();
    assert_eq!(err.line, 3, "{err}");
    assert!(err.message.contains("before its definition"), "{err}");
}

#[test]
fn phi_forward_references_are_legal_and_become_inputs() {
    // %next is defined *after* the φ that consumes it (the loop back-edge);
    // the φ lowers to a block input, so no node-level forward edge exists.
    let source = "define i32 @f(i32 %n) {\n\
                  entry:\n  \
                  br label %loop\n\
                  loop:\n  \
                  %i = phi i32 [ 0, %entry ], [ %next, %loop ]\n  \
                  %next = add i32 %i, 1\n  \
                  %done = icmp eq i32 %next, %n\n  \
                  br i1 %done, label %exit, label %loop\n\
                  exit:\n  \
                  ret i32 0\n}\n";
    let program = parse_and_lower("phi", source).unwrap();
    let body = program
        .blocks()
        .iter()
        .find(|b| b.name() == "f.loop")
        .expect("loop block");
    assert!(
        body.iter_inputs().any(|(_, i)| i.name == "i"),
        "φ is an input"
    );
    // The back-edge value must be exported for the next iteration's φ.
    assert!(body.iter_outputs().any(|o| o.name == "next"));
    program.validate().unwrap();
}
