//! # ise-frontend — textual LLVM IR (`.ll`) front-end for ISE identification
//!
//! The identification algorithms of the Atasu/Pozzi/Ienne methodology operate on
//! *compiler-produced* dataflow graphs of real embedded applications. This crate turns
//! the textual LLVM IR a C compiler emits (`clang -S -emit-llvm`) into
//! [`ise_ir::Program`]s, with no external dependencies: a hand-rolled lexer
//! ([`lex`]), a recursive-descent parser ([`parser`]) over an integer-only subset of
//! the `.ll` grammar, a canonical pretty-printer ([`printer`]) for round-trip testing,
//! and a lowering pass ([`lower`]) implementing the paper's AFU model — memory
//! operations, calls and address computations are materialised as *forbidden* nodes
//! rather than silently dropped, so the `IN(S)`/`OUT(S)` port accounting stays honest.
//!
//! See the module documentation of [`lower`] for the complete opcode mapping and
//! forbidden-node policy, and the repository README for the supported grammar subset.
//!
//! # Example
//!
//! ```
//! let source = r#"
//! define i32 @sum_diff_product(i32 %a, i32 %b) {
//! entry:
//!   %sum = add i32 %a, %b
//!   %diff = sub i32 %a, %b
//!   %prod = mul i32 %sum, %diff
//!   ret i32 %prod
//! }
//! "#;
//! let program = ise_frontend::parse_and_lower("example", source).unwrap();
//! assert_eq!(program.blocks().len(), 1);
//! assert_eq!(program.blocks()[0].node_count(), 3);
//! assert_eq!(program.blocks()[0].input_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod lex;
pub mod lower;
pub mod parser;
pub mod printer;

use std::fmt;

pub use ast::Module;
pub use lower::{lower_module, lower_module_functions};
pub use parser::{parse_module, ParseError};
pub use printer::print_module;

/// A front-end failure: lexing, parsing or lowering, with 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (1 when only the line is known).
    pub column: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError {
            line: e.line,
            column: e.column,
            message: e.message,
        }
    }
}

/// Parses `.ll` text and lowers every defined function into one [`ise_ir::Program`].
///
/// Blocks are named `<function>.<label>`. Execution counts are inferred from `!prof`
/// metadata when the module carries it (branch weights summed over incoming edges,
/// `function_entry_count` for the entry block) and default to 1 otherwise.
///
/// # Errors
///
/// Returns a [`FrontendError`] with line/column context on any lexing or parsing
/// failure, on constructs outside the supported subset, and on invalid SSA.
pub fn parse_and_lower(program_name: &str, source: &str) -> Result<ise_ir::Program, FrontendError> {
    let module = parse_module(source)?;
    lower_module(&module, program_name)
}

/// Parses `.ll` text and lowers it into one [`ise_ir::Program`] *per defined
/// function* — the corpus-facing entry point.
///
/// A module with several `define`s slices into one program per function, named
/// `<program_name>.<function>` in source order (see
/// [`lower_module_functions`]); a module with zero
/// or one lowers exactly as [`parse_and_lower`], keeping the module-level name, so
/// single-function files produce the same bytes through either entry point.
///
/// # Errors
///
/// Exactly as [`parse_and_lower`].
pub fn parse_and_lower_functions(
    program_name: &str,
    source: &str,
) -> Result<Vec<ise_ir::Program>, FrontendError> {
    let module = parse_module(source)?;
    if module.functions.len() <= 1 {
        lower_module(&module, program_name).map(|program| vec![program])
    } else {
        lower_module_functions(&module, program_name)
    }
}
