//! Hand-rolled tokeniser for the textual LLVM IR subset.
//!
//! The lexer is deliberately small: it recognises exactly the token shapes that appear
//! in integer-only compiled C (`clang -S -emit-llvm`) — identifiers, `%local` /
//! `@global` references, integer literals, string literals, metadata (`!name`) and
//! attribute-group (`#0`) references, and single-character punctuation. `;` comments
//! are skipped. Every token carries its 1-based line and column so parse errors can be
//! reported with source positions.

use std::fmt;

/// A single lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column of the token's first character.
    pub column: u32,
}

/// The shape of a token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A bare word: keyword, opcode, type or attribute name (`define`, `add`, `i32`).
    Word(String),
    /// A local value or label reference without the `%` sigil (`%acc` → `acc`).
    Local(String),
    /// A global reference without the `@` sigil (`@crc_table` → `crc_table`).
    Global(String),
    /// A metadata reference without the `!` sigil (`!tbaa` → `tbaa`, bare `!` → empty).
    Metadata(String),
    /// An attribute-group reference without the `#` sigil (`#0` → `0`).
    AttrGroup(String),
    /// An integer literal.
    Int(i64),
    /// A quoted string literal (contents only).
    Str(String),
    /// One punctuation character: `( ) { } [ ] < > = , * :`.
    Punct(char),
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Word(w) => write!(f, "`{w}`"),
            TokenKind::Local(n) => write!(f, "`%{n}`"),
            TokenKind::Global(n) => write!(f, "`@{n}`"),
            TokenKind::Metadata(n) => write!(f, "`!{n}`"),
            TokenKind::AttrGroup(n) => write!(f, "`#{n}`"),
            TokenKind::Int(v) => write!(f, "`{v}`"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::Punct(c) => write!(f, "`{c}`"),
        }
    }
}

/// A lexing failure with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub column: u32,
    /// Human-readable description.
    pub message: String,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || matches!(c, '$' | '.' | '_' | '-')
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '$' | '.' | '_' | '-')
}

/// Lexes `source` into a token vector.
///
/// # Errors
///
/// Returns a [`LexError`] on characters outside the supported vocabulary or on an
/// unterminated string literal.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line: u32 = 1;
    let mut column: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                column = 1;
            } else if c.is_some() {
                column += 1;
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let tok_line = line;
        let tok_column = column;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            ';' => {
                // Comment: skip to end of line.
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '%' | '@' | '!' | '#' => {
                bump!();
                let mut name = String::new();
                if chars.peek() == Some(&'"') {
                    bump!();
                    loop {
                        match bump!() {
                            Some('"') => break,
                            Some(c) => name.push(c),
                            None => {
                                return Err(LexError {
                                    line: tok_line,
                                    column: tok_column,
                                    message: "unterminated quoted identifier".into(),
                                })
                            }
                        }
                    }
                } else {
                    while let Some(&c) = chars.peek() {
                        if is_ident_continue(c) {
                            name.push(c);
                            bump!();
                        } else {
                            break;
                        }
                    }
                }
                let kind = match c {
                    '%' => TokenKind::Local(name),
                    '@' => TokenKind::Global(name),
                    '!' => TokenKind::Metadata(name),
                    _ => TokenKind::AttrGroup(name),
                };
                tokens.push(Token {
                    kind,
                    line: tok_line,
                    column: tok_column,
                });
            }
            '"' => {
                bump!();
                let mut text = String::new();
                loop {
                    match bump!() {
                        Some('"') => break,
                        Some(c) => text.push(c),
                        None => {
                            return Err(LexError {
                                line: tok_line,
                                column: tok_column,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(text),
                    line: tok_line,
                    column: tok_column,
                });
            }
            '0'..='9' => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == 'x' {
                        text.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                let value = parse_int(&text).ok_or_else(|| LexError {
                    line: tok_line,
                    column: tok_column,
                    message: format!("invalid integer literal `{text}`"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line: tok_line,
                    column: tok_column,
                });
            }
            '-' => {
                // `-` starts either a negative integer literal or an identifier-like
                // word (LLVM permits `-` inside identifiers, but never leading in the
                // constructs we parse — so a leading `-` is always a number here).
                bump!();
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                if text.is_empty() {
                    return Err(LexError {
                        line: tok_line,
                        column: tok_column,
                        message: "expected digits after `-`".into(),
                    });
                }
                let value = text
                    .parse::<i64>()
                    .ok()
                    .map(i64::wrapping_neg)
                    .ok_or_else(|| LexError {
                        line: tok_line,
                        column: tok_column,
                        message: format!("invalid integer literal `-{text}`"),
                    })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line: tok_line,
                    column: tok_column,
                });
            }
            c if is_ident_start(c) => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if is_ident_continue(c) {
                        word.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Word(word),
                    line: tok_line,
                    column: tok_column,
                });
            }
            '(' | ')' | '{' | '}' | '[' | ']' | '<' | '>' | '=' | ',' | '*' | ':' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    line: tok_line,
                    column: tok_column,
                });
            }
            other => {
                return Err(LexError {
                    line: tok_line,
                    column: tok_column,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(tokens)
}

/// Parses a decimal or `0x`-prefixed integer literal, wrapping to `i64`.
fn parse_int(text: &str) -> Option<i64> {
    if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok().map(|v| v as i64)
    } else {
        // LLVM prints u64-sized constants; accept the full unsigned range and wrap.
        text.parse::<i64>()
            .ok()
            .or_else(|| text.parse::<u64>().ok().map(|v| v as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_simple_instruction() {
        let tokens = lex("%sum = add nsw i32 %a, -7 ; trailing comment").unwrap();
        let kinds: Vec<TokenKind> = tokens.into_iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Local("sum".into()),
                TokenKind::Punct('='),
                TokenKind::Word("add".into()),
                TokenKind::Word("nsw".into()),
                TokenKind::Word("i32".into()),
                TokenKind::Local("a".into()),
                TokenKind::Punct(','),
                TokenKind::Int(-7),
            ]
        );
    }

    #[test]
    fn tracks_line_and_column() {
        let tokens = lex("define\n  @f:").unwrap();
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[0].column, 1);
        assert_eq!(tokens[1].line, 2);
        assert_eq!(tokens[1].column, 3);
        assert_eq!(tokens[2].kind, TokenKind::Punct(':'));
    }

    #[test]
    fn rejects_stray_characters() {
        let err = lex("add ^ sub").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 5);
        assert!(err.message.contains('^'));
    }

    #[test]
    fn lexes_quoted_identifiers_and_metadata() {
        let tokens = lex("%\"odd name\" @g !tbaa !{ #0").unwrap();
        let kinds: Vec<TokenKind> = tokens.into_iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Local("odd name".into()),
                TokenKind::Global("g".into()),
                TokenKind::Metadata("tbaa".into()),
                TokenKind::Metadata(String::new()),
                TokenKind::Punct('{'),
                TokenKind::AttrGroup("0".into()),
            ]
        );
    }

    #[test]
    fn lexes_large_unsigned_constants() {
        let tokens = lex("4294967295 0xEDB88320").unwrap();
        assert_eq!(tokens[0].kind, TokenKind::Int(4_294_967_295));
        assert_eq!(tokens[1].kind, TokenKind::Int(0xEDB8_8320));
    }
}
