//! Canonical `.ll` pretty-printer.
//!
//! Prints exactly the normalised subset the parser produces: no flags, no attributes,
//! and no metadata apart from `!prof`. Because the parser drops everything else at
//! parse time, `parse ∘ print` is the identity on ASTs and `print ∘ parse` is
//! idempotent on text — printing a freshly parsed module and re-parsing it reproduces
//! the same bytes, the property the round-trip suite checks.
//!
//! Profile metadata is printed the way LLVM does: a `!prof !N` reference on the
//! `define` line (entry count) or after a `br i1`/`switch` terminator (branch
//! weights), with the `!N = !{…}` definitions collected at the end of the module.
//! Definitions are renumbered densely in first-use order, so the output is canonical
//! regardless of the ids the input used.

use crate::ast::{Block, Function, Inst, Module, Param, Terminator, Value};
use std::fmt::Write as _;

/// Renders a module to canonical `.ll` text.
#[must_use]
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    // Rendered `!{…}` bodies in first-use order; index = canonical metadata id.
    let mut defs: Vec<String> = Vec::new();
    for (i, function) in module.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(&mut out, function, &mut defs);
    }
    if !defs.is_empty() {
        out.push('\n');
        for (id, body) in defs.iter().enumerate() {
            let _ = writeln!(out, "!{id} = !{{{body}}}");
        }
    }
    out
}

fn print_function(out: &mut String, function: &Function, defs: &mut Vec<String>) {
    let _ = write!(out, "define {} @{}(", function.ret, ident(&function.name));
    for (i, Param { ty, name }) in function.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{ty} %{}", ident(name));
    }
    out.push(')');
    if let Some(count) = function.entry_count {
        let _ = write!(out, " !prof !{}", defs.len());
        defs.push(format!("!\"function_entry_count\", i64 {count}"));
    }
    out.push_str(" {\n");
    for block in &function.blocks {
        print_block(out, block, defs);
    }
    out.push_str("}\n");
}

fn print_block(out: &mut String, block: &Block, defs: &mut Vec<String>) {
    let _ = writeln!(out, "{}:", ident(&block.label));
    for (_, inst) in &block.insts {
        print_inst(out, inst);
    }
    // Branch weights only make sense on multi-successor terminators; the parser
    // never attaches them elsewhere.
    let prof = match &block.term {
        Terminator::CondBr { .. } | Terminator::Switch { .. } => block.prof.as_deref(),
        _ => None,
    };
    print_terminator(out, &block.term, prof, defs);
}

/// Emits a branch-weights definition and returns its `, !prof !N` suffix.
fn prof_suffix(prof: Option<&[u64]>, defs: &mut Vec<String>) -> String {
    match prof {
        Some(weights) => {
            let mut body = String::from("!\"branch_weights\"");
            for w in weights {
                let _ = write!(body, ", i32 {w}");
            }
            let suffix = format!(", !prof !{}", defs.len());
            defs.push(body);
            suffix
        }
        None => String::new(),
    }
}

fn print_inst(out: &mut String, inst: &Inst) {
    out.push_str("  ");
    match inst {
        Inst::Binary {
            result,
            op,
            ty,
            lhs,
            rhs,
        } => {
            let _ = writeln!(
                out,
                "%{} = {} {ty} {}, {}",
                ident(result),
                op.keyword(),
                value(lhs),
                value(rhs)
            );
        }
        Inst::Icmp {
            result,
            pred,
            ty,
            lhs,
            rhs,
        } => {
            let _ = writeln!(
                out,
                "%{} = icmp {} {ty} {}, {}",
                ident(result),
                pred.keyword(),
                value(lhs),
                value(rhs)
            );
        }
        Inst::Select {
            result,
            cond,
            ty,
            then_value,
            else_value,
        } => {
            let _ = writeln!(
                out,
                "%{} = select i1 {}, {ty} {}, {ty} {}",
                ident(result),
                value(cond),
                value(then_value),
                value(else_value)
            );
        }
        Inst::Cast {
            result,
            op,
            from,
            value: v,
            to,
        } => {
            let _ = writeln!(
                out,
                "%{} = {} {from} {} to {to}",
                ident(result),
                op.keyword(),
                value(v)
            );
        }
        Inst::Freeze {
            result,
            ty,
            value: v,
        } => {
            let _ = writeln!(out, "%{} = freeze {ty} {}", ident(result), value(v));
        }
        Inst::Load {
            result,
            ty,
            ptr_ty,
            ptr,
        } => {
            let _ = writeln!(
                out,
                "%{} = load {ty}, {ptr_ty} {}",
                ident(result),
                value(ptr)
            );
        }
        Inst::Store {
            ty,
            value: v,
            ptr_ty,
            ptr,
        } => {
            let _ = writeln!(out, "store {ty} {}, {ptr_ty} {}", value(v), value(ptr));
        }
        Inst::Gep {
            result,
            base_ty,
            ptr_ty,
            ptr,
            indices,
        } => {
            let _ = write!(
                out,
                "%{} = getelementptr {base_ty}, {ptr_ty} {}",
                ident(result),
                value(ptr)
            );
            for (ty, idx) in indices {
                let _ = write!(out, ", {ty} {}", value(idx));
            }
            out.push('\n');
        }
        Inst::Alloca { result, ty } => {
            let _ = writeln!(out, "%{} = alloca {ty}", ident(result));
        }
        Inst::Call {
            result,
            ret,
            callee,
            args,
        } => {
            if let Some(result) = result {
                let _ = write!(out, "%{} = ", ident(result));
            }
            let _ = write!(out, "call {ret} @{}(", ident(callee));
            for (i, (ty, arg)) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{ty} {}", value(arg));
            }
            out.push_str(")\n");
        }
        Inst::Phi {
            result,
            ty,
            incoming,
        } => {
            let _ = write!(out, "%{} = phi {ty} ", ident(result));
            for (i, (v, pred)) in incoming.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[ {}, %{} ]", value(v), ident(pred));
            }
            out.push('\n');
        }
    }
}

fn print_terminator(
    out: &mut String,
    term: &Terminator,
    prof: Option<&[u64]>,
    defs: &mut Vec<String>,
) {
    out.push_str("  ");
    match term {
        Terminator::RetVoid => out.push_str("ret void\n"),
        Terminator::Ret { ty, value: v } => {
            let _ = writeln!(out, "ret {ty} {}", value(v));
        }
        Terminator::Br { dest } => {
            let _ = writeln!(out, "br label %{}", ident(dest));
        }
        Terminator::CondBr {
            cond,
            then_dest,
            else_dest,
        } => {
            let _ = writeln!(
                out,
                "br i1 {}, label %{}, label %{}{}",
                value(cond),
                ident(then_dest),
                ident(else_dest),
                prof_suffix(prof, defs)
            );
        }
        Terminator::Switch {
            ty,
            value: v,
            default,
            cases,
        } => {
            let _ = writeln!(out, "switch {ty} {}, label %{} [", value(v), ident(default));
            for (case, dest) in cases {
                let _ = writeln!(out, "    {ty} {case}, label %{}", ident(dest));
            }
            let _ = writeln!(out, "  ]{}", prof_suffix(prof, defs));
        }
        Terminator::Unreachable => out.push_str("unreachable\n"),
    }
}

fn value(v: &Value) -> String {
    match v {
        Value::Local(name) => format!("%{}", ident(name)),
        Value::Global(name) => format!("@{}", ident(name)),
        Value::Int(i) => i.to_string(),
        Value::Undef => "undef".to_string(),
    }
}

/// Quotes an identifier when it contains characters outside LLVM's bare-name set.
fn ident(name: &str) -> String {
    let bare = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '$' | '.' | '_' | '-'));
    if bare {
        name.to_string()
    } else {
        format!("\"{name}\"")
    }
}
