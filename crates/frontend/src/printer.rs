//! Canonical `.ll` pretty-printer.
//!
//! Prints exactly the normalised subset the parser produces: no flags, no attributes,
//! no metadata. Because the parser drops those annotations at parse time,
//! `parse ∘ print` is the identity on ASTs and `print ∘ parse` is idempotent on text —
//! printing a freshly parsed module and re-parsing it reproduces the same bytes, the
//! property the round-trip suite checks.

use crate::ast::{Block, Function, Inst, Module, Param, Terminator, Value};
use std::fmt::Write as _;

/// Renders a module to canonical `.ll` text.
#[must_use]
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    for (i, function) in module.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(&mut out, function);
    }
    out
}

fn print_function(out: &mut String, function: &Function) {
    let _ = write!(out, "define {} @{}(", function.ret, ident(&function.name));
    for (i, Param { ty, name }) in function.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{ty} %{}", ident(name));
    }
    out.push_str(") {\n");
    for block in &function.blocks {
        print_block(out, block);
    }
    out.push_str("}\n");
}

fn print_block(out: &mut String, block: &Block) {
    let _ = writeln!(out, "{}:", ident(&block.label));
    for (_, inst) in &block.insts {
        print_inst(out, inst);
    }
    print_terminator(out, &block.term);
}

fn print_inst(out: &mut String, inst: &Inst) {
    out.push_str("  ");
    match inst {
        Inst::Binary {
            result,
            op,
            ty,
            lhs,
            rhs,
        } => {
            let _ = writeln!(
                out,
                "%{} = {} {ty} {}, {}",
                ident(result),
                op.keyword(),
                value(lhs),
                value(rhs)
            );
        }
        Inst::Icmp {
            result,
            pred,
            ty,
            lhs,
            rhs,
        } => {
            let _ = writeln!(
                out,
                "%{} = icmp {} {ty} {}, {}",
                ident(result),
                pred.keyword(),
                value(lhs),
                value(rhs)
            );
        }
        Inst::Select {
            result,
            cond,
            ty,
            then_value,
            else_value,
        } => {
            let _ = writeln!(
                out,
                "%{} = select i1 {}, {ty} {}, {ty} {}",
                ident(result),
                value(cond),
                value(then_value),
                value(else_value)
            );
        }
        Inst::Cast {
            result,
            op,
            from,
            value: v,
            to,
        } => {
            let _ = writeln!(
                out,
                "%{} = {} {from} {} to {to}",
                ident(result),
                op.keyword(),
                value(v)
            );
        }
        Inst::Freeze {
            result,
            ty,
            value: v,
        } => {
            let _ = writeln!(out, "%{} = freeze {ty} {}", ident(result), value(v));
        }
        Inst::Load {
            result,
            ty,
            ptr_ty,
            ptr,
        } => {
            let _ = writeln!(
                out,
                "%{} = load {ty}, {ptr_ty} {}",
                ident(result),
                value(ptr)
            );
        }
        Inst::Store {
            ty,
            value: v,
            ptr_ty,
            ptr,
        } => {
            let _ = writeln!(out, "store {ty} {}, {ptr_ty} {}", value(v), value(ptr));
        }
        Inst::Gep {
            result,
            base_ty,
            ptr_ty,
            ptr,
            indices,
        } => {
            let _ = write!(
                out,
                "%{} = getelementptr {base_ty}, {ptr_ty} {}",
                ident(result),
                value(ptr)
            );
            for (ty, idx) in indices {
                let _ = write!(out, ", {ty} {}", value(idx));
            }
            out.push('\n');
        }
        Inst::Alloca { result, ty } => {
            let _ = writeln!(out, "%{} = alloca {ty}", ident(result));
        }
        Inst::Call {
            result,
            ret,
            callee,
            args,
        } => {
            if let Some(result) = result {
                let _ = write!(out, "%{} = ", ident(result));
            }
            let _ = write!(out, "call {ret} @{}(", ident(callee));
            for (i, (ty, arg)) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{ty} {}", value(arg));
            }
            out.push_str(")\n");
        }
        Inst::Phi {
            result,
            ty,
            incoming,
        } => {
            let _ = write!(out, "%{} = phi {ty} ", ident(result));
            for (i, (v, pred)) in incoming.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[ {}, %{} ]", value(v), ident(pred));
            }
            out.push('\n');
        }
    }
}

fn print_terminator(out: &mut String, term: &Terminator) {
    out.push_str("  ");
    match term {
        Terminator::RetVoid => out.push_str("ret void\n"),
        Terminator::Ret { ty, value: v } => {
            let _ = writeln!(out, "ret {ty} {}", value(v));
        }
        Terminator::Br { dest } => {
            let _ = writeln!(out, "br label %{}", ident(dest));
        }
        Terminator::CondBr {
            cond,
            then_dest,
            else_dest,
        } => {
            let _ = writeln!(
                out,
                "br i1 {}, label %{}, label %{}",
                value(cond),
                ident(then_dest),
                ident(else_dest)
            );
        }
        Terminator::Switch {
            ty,
            value: v,
            default,
            cases,
        } => {
            let _ = writeln!(out, "switch {ty} {}, label %{} [", value(v), ident(default));
            for (case, dest) in cases {
                let _ = writeln!(out, "    {ty} {case}, label %{}", ident(dest));
            }
            out.push_str("  ]\n");
        }
        Terminator::Unreachable => out.push_str("unreachable\n"),
    }
}

fn value(v: &Value) -> String {
    match v {
        Value::Local(name) => format!("%{}", ident(name)),
        Value::Global(name) => format!("@{}", ident(name)),
        Value::Int(i) => i.to_string(),
        Value::Undef => "undef".to_string(),
    }
}

/// Quotes an identifier when it contains characters outside LLVM's bare-name set.
fn ident(name: &str) -> String {
    let bare = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '$' | '.' | '_' | '-'));
    if bare {
        name.to_string()
    } else {
        format!("\"{name}\"")
    }
}
