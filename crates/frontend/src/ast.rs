//! Abstract syntax tree for the supported LLVM IR subset.
//!
//! The AST is *normalised*: flags and annotations that do not affect dataflow
//! (`nsw`/`nuw`/`exact`/`inbounds`, alignment, parameter attributes, metadata,
//! calling conventions) are dropped by the parser. Pretty-printing an AST therefore
//! yields a canonical `.ll` text, and `parse ∘ print` is the identity on ASTs — the
//! property the round-trip test suite checks at the byte level.

use std::fmt;

/// A parsed module: the functions defined in one `.ll` file.
///
/// Module-level constructs that carry no dataflow (`target` lines, global variable
/// definitions, `declare`s, attribute groups, metadata) are skipped during parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// The functions defined in the module, in source order.
    pub functions: Vec<Function>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name without the `@` sigil.
    pub name: String,
    /// Return type.
    pub ret: Ty,
    /// Formal parameters, in order.
    pub params: Vec<Param>,
    /// Basic blocks, in source order. The first block is the entry block.
    pub blocks: Vec<Block>,
    /// Profile entry count from `!prof !N` → `!{!"function_entry_count", i64 N}` on
    /// the `define` line, when present. The one metadata kind the parser keeps.
    pub entry_count: Option<u64>,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter type.
    pub ty: Ty,
    /// Parameter name without the `%` sigil (implicitly numbered when unnamed).
    pub name: String,
}

/// A basic block: a label, straight-line instructions, and one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Label without the trailing `:` (an unlabelled entry block is implicitly
    /// numbered, following LLVM's unnamed-value numbering).
    pub label: String,
    /// Non-terminator instructions in source order, each with its 1-based source
    /// line (used by the lowering pass for diagnostics; ignored by the printer).
    pub insts: Vec<(u32, Inst)>,
    /// The block terminator.
    pub term: Terminator,
    /// Branch weights from `!prof !N` → `!{!"branch_weights", …}` on the terminator,
    /// when present: one weight per successor, in successor order ([then, else] for
    /// `br i1`, [default, cases…] for `switch`). The parser drops weight lists whose
    /// length does not match the successor count.
    pub prof: Option<Vec<u64>>,
}

/// The supported types: `void`, integers, pointers and arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// `void`.
    Void,
    /// `iN` — an integer of `N` bits.
    Int(u32),
    /// An opaque pointer (`ptr`).
    Ptr,
    /// A typed pointer (`T*`).
    PtrTo(Box<Ty>),
    /// `[N x T]`.
    Array(u64, Box<Ty>),
    /// A named (struct) type, `%name`; only meaningful behind a pointer.
    Named(String),
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Void => f.write_str("void"),
            Ty::Int(bits) => write!(f, "i{bits}"),
            Ty::Ptr => f.write_str("ptr"),
            Ty::PtrTo(inner) => write!(f, "{inner}*"),
            Ty::Array(n, elem) => write!(f, "[{n} x {elem}]"),
            Ty::Named(name) => write!(f, "%{name}"),
        }
    }
}

/// An SSA value reference or constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `%name`.
    Local(String),
    /// `@name`.
    Global(String),
    /// An integer literal (also `true`/`false`, printed as such for `i1`).
    Int(i64),
    /// `undef`, `poison` or `null` — lowered as the constant 0.
    Undef,
}

/// Integer binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `add`
    Add,
    /// `sub`
    Sub,
    /// `mul`
    Mul,
    /// `sdiv`
    Sdiv,
    /// `udiv`
    Udiv,
    /// `srem`
    Srem,
    /// `urem`
    Urem,
    /// `shl`
    Shl,
    /// `lshr`
    Lshr,
    /// `ashr`
    Ashr,
    /// `and`
    And,
    /// `or`
    Or,
    /// `xor`
    Xor,
}

impl BinOp {
    /// The LLVM keyword of the operator.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Sdiv => "sdiv",
            BinOp::Udiv => "udiv",
            BinOp::Srem => "srem",
            BinOp::Urem => "urem",
            BinOp::Shl => "shl",
            BinOp::Lshr => "lshr",
            BinOp::Ashr => "ashr",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
        }
    }
}

/// `icmp` predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpPred {
    /// `eq`
    Eq,
    /// `ne`
    Ne,
    /// `slt`
    Slt,
    /// `sle`
    Sle,
    /// `sgt`
    Sgt,
    /// `sge`
    Sge,
    /// `ult`
    Ult,
    /// `ule`
    Ule,
    /// `ugt`
    Ugt,
    /// `uge`
    Uge,
}

impl IcmpPred {
    /// The LLVM keyword of the predicate.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            IcmpPred::Eq => "eq",
            IcmpPred::Ne => "ne",
            IcmpPred::Slt => "slt",
            IcmpPred::Sle => "sle",
            IcmpPred::Sgt => "sgt",
            IcmpPred::Sge => "sge",
            IcmpPred::Ult => "ult",
            IcmpPred::Ule => "ule",
            IcmpPred::Ugt => "ugt",
            IcmpPred::Uge => "uge",
        }
    }
}

/// Cast operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastOp {
    /// `sext`
    Sext,
    /// `zext`
    Zext,
    /// `trunc`
    Trunc,
    /// `bitcast`
    Bitcast,
    /// `ptrtoint`
    Ptrtoint,
    /// `inttoptr`
    Inttoptr,
}

impl CastOp {
    /// The LLVM keyword of the cast.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            CastOp::Sext => "sext",
            CastOp::Zext => "zext",
            CastOp::Trunc => "trunc",
            CastOp::Bitcast => "bitcast",
            CastOp::Ptrtoint => "ptrtoint",
            CastOp::Inttoptr => "inttoptr",
        }
    }
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `%r = <binop> <ty> <lhs>, <rhs>`
    Binary {
        /// Result name.
        result: String,
        /// The operator.
        op: BinOp,
        /// Operand type.
        ty: Ty,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// `%r = icmp <pred> <ty> <lhs>, <rhs>`
    Icmp {
        /// Result name.
        result: String,
        /// The predicate.
        pred: IcmpPred,
        /// Operand type.
        ty: Ty,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// `%r = select i1 <cond>, <ty> <then>, <ty> <else>`
    Select {
        /// Result name.
        result: String,
        /// Condition value.
        cond: Value,
        /// Value type.
        ty: Ty,
        /// Value when the condition is non-zero.
        then_value: Value,
        /// Value when the condition is zero.
        else_value: Value,
    },
    /// `%r = <castop> <from> <value> to <to>`
    Cast {
        /// Result name.
        result: String,
        /// The cast operator.
        op: CastOp,
        /// Source type.
        from: Ty,
        /// Operand.
        value: Value,
        /// Destination type.
        to: Ty,
    },
    /// `%r = freeze <ty> <value>`
    Freeze {
        /// Result name.
        result: String,
        /// Operand type.
        ty: Ty,
        /// Operand.
        value: Value,
    },
    /// `%r = load <ty>, <ptr-ty> <ptr>`
    Load {
        /// Result name.
        result: String,
        /// Loaded type.
        ty: Ty,
        /// Pointer operand type.
        ptr_ty: Ty,
        /// Pointer operand.
        ptr: Value,
    },
    /// `store <ty> <value>, <ptr-ty> <ptr>`
    Store {
        /// Stored type.
        ty: Ty,
        /// Stored value.
        value: Value,
        /// Pointer operand type.
        ptr_ty: Ty,
        /// Pointer operand.
        ptr: Value,
    },
    /// `%r = getelementptr <base-ty>, <ptr-ty> <ptr>, (<ty> <idx>)+`
    Gep {
        /// Result name.
        result: String,
        /// Indexed (pointee) type.
        base_ty: Ty,
        /// Pointer operand type.
        ptr_ty: Ty,
        /// Pointer operand.
        ptr: Value,
        /// Index list.
        indices: Vec<(Ty, Value)>,
    },
    /// `%r = alloca <ty>`
    Alloca {
        /// Result name.
        result: String,
        /// Allocated type.
        ty: Ty,
    },
    /// `[%r =] call <ret-ty> @callee((<ty> <arg>)*)`
    Call {
        /// Result name (`None` for `void` calls).
        result: Option<String>,
        /// Return type.
        ret: Ty,
        /// Callee name without the `@` sigil.
        callee: String,
        /// Argument list.
        args: Vec<(Ty, Value)>,
    },
    /// `%r = phi <ty> [ <value>, %<pred> ], ...`
    Phi {
        /// Result name.
        result: String,
        /// Value type.
        ty: Ty,
        /// `(value, predecessor label)` pairs.
        incoming: Vec<(Value, String)>,
    },
}

impl Inst {
    /// The name the instruction defines, if any.
    #[must_use]
    pub fn result(&self) -> Option<&str> {
        match self {
            Inst::Binary { result, .. }
            | Inst::Icmp { result, .. }
            | Inst::Select { result, .. }
            | Inst::Cast { result, .. }
            | Inst::Freeze { result, .. }
            | Inst::Load { result, .. }
            | Inst::Gep { result, .. }
            | Inst::Alloca { result, .. }
            | Inst::Phi { result, .. } => Some(result),
            Inst::Store { .. } => None,
            Inst::Call { result, .. } => result.as_deref(),
        }
    }

    /// Visits every [`Value`] operand of the instruction.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Value)) {
        match self {
            Inst::Binary { lhs, rhs, .. } | Inst::Icmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Select {
                cond,
                then_value,
                else_value,
                ..
            } => {
                f(cond);
                f(then_value);
                f(else_value);
            }
            Inst::Cast { value, .. } | Inst::Freeze { value, .. } => f(value),
            Inst::Load { ptr, .. } => f(ptr),
            Inst::Store { value, ptr, .. } => {
                f(value);
                f(ptr);
            }
            Inst::Gep { ptr, indices, .. } => {
                f(ptr);
                for (_, idx) in indices {
                    f(idx);
                }
            }
            Inst::Alloca { .. } => {}
            Inst::Call { args, .. } => {
                for (_, arg) in args {
                    f(arg);
                }
            }
            Inst::Phi { incoming, .. } => {
                for (value, _) in incoming {
                    f(value);
                }
            }
        }
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// `ret void`
    RetVoid,
    /// `ret <ty> <value>`
    Ret {
        /// Returned type.
        ty: Ty,
        /// Returned value.
        value: Value,
    },
    /// `br label %dest`
    Br {
        /// Destination label.
        dest: String,
    },
    /// `br i1 <cond>, label %then, label %else`
    CondBr {
        /// Branch condition.
        cond: Value,
        /// Taken destination.
        then_dest: String,
        /// Fall-through destination.
        else_dest: String,
    },
    /// `switch <ty> <value>, label %default [ (<ty> <case>, label %dest)* ]`
    Switch {
        /// Scrutinee type.
        ty: Ty,
        /// Scrutinee value.
        value: Value,
        /// Default destination label.
        default: String,
        /// `(case constant, destination label)` pairs.
        cases: Vec<(i64, String)>,
    },
    /// `unreachable`
    Unreachable,
}

impl Terminator {
    /// Visits every [`Value`] operand of the terminator.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Value)) {
        match self {
            Terminator::Ret { value, .. } => f(value),
            Terminator::CondBr { cond, .. } => f(cond),
            Terminator::Switch { value, .. } => f(value),
            Terminator::RetVoid | Terminator::Br { .. } | Terminator::Unreachable => {}
        }
    }
}
