//! Recursive-descent parser for the textual LLVM IR subset.
//!
//! The grammar is line-oriented, matching what `clang -S -emit-llvm` actually prints:
//! one instruction per line (the multi-line `switch` is handled explicitly), labels on
//! their own line, and module-level constructs (`target …`, global definitions,
//! `declare`, `attributes`, metadata) each on a single line. Constructs without
//! dataflow content are skipped; annotations that do not affect dataflow (`nsw`, `nuw`,
//! `exact`, `inbounds`, `align`, parameter/function attributes, metadata) are dropped,
//! so the parsed AST is canonical (see [`crate::printer`]).
//!
//! The one metadata kind that *is* kept is `!prof`: `!{!"function_entry_count", …}`
//! on a `define` and `!{!"branch_weights", …}` on a `br i1`/`switch` terminator carry
//! the profile the lowering pass turns into block execution counts. Definitions may
//! appear after their uses (LLVM prints them at the end of the module), so references
//! are recorded during the parse and resolved once the whole module has been read;
//! unresolved, malformed or wrong-arity profile metadata is silently dropped, like
//! every other annotation.

use crate::ast::{
    BinOp, Block, CastOp, Function, IcmpPred, Inst, Module, Param, Terminator, Ty, Value,
};
use crate::lex::{lex, Token, TokenKind};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub column: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses an `.ll` module from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column context on any construct outside the
/// supported subset (floating-point or vector types, constant expressions, indirect
/// calls, malformed syntax).
pub fn parse_module(source: &str) -> Result<Module, ParseError> {
    let tokens = lex(source).map_err(|e| ParseError {
        line: e.line,
        column: e.column,
        message: e.message,
    })?;
    Parser::new(tokens).module()
}

/// Attribute-like words that may appear between a type and a value (parameter
/// attributes, return attributes, calling conventions, function qualifiers).
const ATTR_WORDS: &[&str] = &[
    "noundef",
    "signext",
    "zeroext",
    "inreg",
    "returned",
    "nonnull",
    "nocapture",
    "readonly",
    "readnone",
    "writeonly",
    "byval",
    "sret",
    "noalias",
    "immarg",
    "nest",
    "swiftself",
    "dereferenceable",
    "fastcc",
    "coldcc",
    "ccc",
    "tailcc",
    "dso_local",
    "dso_preemptable",
    "internal",
    "private",
    "external",
    "linkonce",
    "linkonce_odr",
    "weak",
    "weak_odr",
    "common",
    "hidden",
    "protected",
    "local_unnamed_addr",
    "unnamed_addr",
    "comdat",
];

/// A module-level metadata definition with profile content.
enum MetaDef {
    /// `!{!"branch_weights", i32 w0, i32 w1, …}` — one weight per successor.
    BranchWeights(Vec<u64>),
    /// `!{!"function_entry_count", i64 n}`.
    FunctionEntryCount(u64),
}

/// A `!prof !N` reference awaiting its definition: on a `define` line
/// (`block == None`) or on a block terminator.
struct ProfRef {
    function: usize,
    block: Option<usize>,
    id: String,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    last_line: u32,
    last_column: u32,
    metadata_defs: HashMap<String, MetaDef>,
    prof_refs: Vec<ProfRef>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            last_line: 1,
            last_column: 1,
            metadata_defs: HashMap::new(),
            prof_refs: Vec::new(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next_token(&mut self) -> Option<Token> {
        let tok = self.tokens.get(self.pos).cloned();
        if let Some(t) = &tok {
            self.pos += 1;
            self.last_line = t.line;
            self.last_column = t.column;
        }
        tok
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        match self.peek() {
            Some(t) => ParseError {
                line: t.line,
                column: t.column,
                message: message.into(),
            },
            None => ParseError {
                line: self.last_line,
                column: self.last_column,
                message: format!("{} (at end of input)", message.into()),
            },
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t.kind == TokenKind::Punct(c) => {
                self.next_token();
                Ok(())
            }
            Some(t) => Err(self.error_here(format!("expected `{c}`, found {}", t.kind))),
            None => Err(self.error_here(format!("expected `{c}`"))),
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t.kind == TokenKind::Word(word.to_string()) => {
                self.next_token();
                Ok(())
            }
            Some(t) => Err(self.error_here(format!("expected `{word}`, found {}", t.kind))),
            None => Err(self.error_here(format!("expected `{word}`"))),
        }
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(t) if t.kind == TokenKind::Punct(c))
    }

    fn at_word(&self, word: &str) -> bool {
        matches!(self.peek(), Some(t) if matches!(&t.kind, TokenKind::Word(w) if w == word))
    }

    fn expect_local(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(t) => {
                if let TokenKind::Local(name) = &t.kind {
                    let name = name.clone();
                    self.next_token();
                    Ok(name)
                } else {
                    Err(self.error_here(format!("expected a `%local` name, found {}", t.kind)))
                }
            }
            None => Err(self.error_here("expected a `%local` name")),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.peek() {
            Some(t) => {
                if let TokenKind::Int(v) = t.kind {
                    self.next_token();
                    Ok(v)
                } else {
                    Err(self.error_here(format!("expected an integer, found {}", t.kind)))
                }
            }
            None => Err(self.error_here("expected an integer")),
        }
    }

    /// Consumes every remaining token on `line` (trailing `align`, metadata, attribute
    /// annotations — anything without dataflow content).
    fn skip_rest_of_line(&mut self, line: u32) {
        while matches!(self.peek(), Some(t) if t.line == line) {
            self.next_token();
        }
    }

    /// Skips attribute-like words (and their optional integer/paren payloads) that may
    /// sit between a type and a value.
    fn skip_attr_words(&mut self) {
        while let Some(t) = self.peek() {
            match &t.kind {
                TokenKind::Word(w) if w == "align" => {
                    self.next_token();
                    if matches!(self.peek(), Some(t) if matches!(t.kind, TokenKind::Int(_))) {
                        self.next_token();
                    }
                }
                TokenKind::Word(w) if w == "dereferenceable" => {
                    self.next_token();
                    if self.at_punct('(') {
                        self.skip_balanced('(', ')');
                    }
                }
                TokenKind::Word(w) if ATTR_WORDS.contains(&w.as_str()) => {
                    self.next_token();
                }
                TokenKind::AttrGroup(_) => {
                    self.next_token();
                }
                _ => break,
            }
        }
    }

    /// Consumes a balanced `open … close` group, assuming the opener is next.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        while let Some(t) = self.next_token() {
            if t.kind == TokenKind::Punct(open) {
                depth += 1;
            } else if t.kind == TokenKind::Punct(close) {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    fn at_type_start(&self) -> bool {
        match self.peek() {
            Some(t) => match &t.kind {
                TokenKind::Word(w) => {
                    w == "void"
                        || w == "ptr"
                        || (w.len() > 1
                            && w.starts_with('i')
                            && w[1..].chars().all(|c| c.is_ascii_digit()))
                }
                TokenKind::Punct('[') | TokenKind::Punct('<') => true,
                TokenKind::Local(_) => true,
                _ => false,
            },
            None => false,
        }
    }

    fn parse_type(&mut self) -> Result<Ty, ParseError> {
        let base = match self.peek() {
            Some(t) => match &t.kind {
                TokenKind::Word(w) => match w.as_str() {
                    "void" => {
                        self.next_token();
                        Ty::Void
                    }
                    "ptr" => {
                        self.next_token();
                        Ty::Ptr
                    }
                    "half" | "bfloat" | "float" | "double" | "fp128" | "x86_fp80" => {
                        return Err(self.error_here(format!(
                            "floating-point type `{w}` is unsupported (integer-only subset)"
                        )));
                    }
                    w2 if w2.len() > 1
                        && w2.starts_with('i')
                        && w2[1..].chars().all(|c| c.is_ascii_digit()) =>
                    {
                        let bits: u32 = w2[1..].parse().map_err(|_| {
                            self.error_here(format!("integer type `{w2}` is too wide"))
                        })?;
                        self.next_token();
                        Ty::Int(bits)
                    }
                    other => {
                        return Err(self.error_here(format!("expected a type, found `{other}`")));
                    }
                },
                TokenKind::Punct('[') => {
                    self.next_token();
                    let n = self.expect_int()?;
                    if n < 0 {
                        return Err(self.error_here("negative array length"));
                    }
                    self.expect_word("x")?;
                    let elem = self.parse_type()?;
                    self.expect_punct(']')?;
                    Ty::Array(n as u64, Box::new(elem))
                }
                TokenKind::Punct('<') => {
                    return Err(self.error_here("vector types are unsupported"));
                }
                TokenKind::Local(name) => {
                    let name = name.clone();
                    self.next_token();
                    Ty::Named(name)
                }
                other => {
                    return Err(self.error_here(format!("expected a type, found {other}")));
                }
            },
            None => return Err(self.error_here("expected a type")),
        };
        let mut ty = base;
        while self.at_punct('*') {
            self.next_token();
            ty = Ty::PtrTo(Box::new(ty));
        }
        Ok(ty)
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(t) => match &t.kind {
                TokenKind::Local(name) => {
                    let name = name.clone();
                    self.next_token();
                    Ok(Value::Local(name))
                }
                TokenKind::Global(name) => {
                    let name = name.clone();
                    self.next_token();
                    Ok(Value::Global(name))
                }
                TokenKind::Int(v) => {
                    let v = *v;
                    self.next_token();
                    Ok(Value::Int(v))
                }
                TokenKind::Word(w) => match w.as_str() {
                    "true" => {
                        self.next_token();
                        Ok(Value::Int(1))
                    }
                    "false" => {
                        self.next_token();
                        Ok(Value::Int(0))
                    }
                    "undef" | "poison" | "null" | "zeroinitializer" | "none" => {
                        self.next_token();
                        Ok(Value::Undef)
                    }
                    "getelementptr" | "bitcast" | "ptrtoint" | "inttoptr" | "add" | "sub"
                    | "mul" => Err(self.error_here(
                        "constant expressions are unsupported; materialise the address in C \
                         or lower the optimisation level",
                    )),
                    other => Err(self.error_here(format!("expected a value, found `{other}`"))),
                },
                other => Err(self.error_here(format!("expected a value, found {other}"))),
            },
            None => Err(self.error_here("expected a value")),
        }
    }

    fn module(&mut self) -> Result<Module, ParseError> {
        let mut functions = Vec::new();
        while let Some(t) = self.peek() {
            let line = t.line;
            match &t.kind {
                TokenKind::Word(w) if w == "define" => {
                    let index = functions.len();
                    functions.push(self.function(index)?);
                }
                // Constructs without dataflow content are skipped line-wise: target
                // lines, global definitions, declarations, attribute groups, metadata,
                // module asm. Each is single-line in compiler output.
                TokenKind::Word(w)
                    if matches!(
                        w.as_str(),
                        "source_filename" | "target" | "declare" | "attributes" | "module"
                    ) =>
                {
                    self.skip_rest_of_line(line);
                }
                TokenKind::Global(_) => {
                    self.skip_rest_of_line(line);
                }
                TokenKind::Metadata(_) => {
                    self.metadata_definition(line);
                }
                other => {
                    return Err(self.error_here(format!("unsupported top-level construct {other}")));
                }
            }
        }
        self.resolve_prof_refs(&mut functions);
        Ok(Module { functions })
    }

    /// Parses a module-level `!<id> = [distinct] !{ … }` line, keeping the two
    /// profile payloads (`branch_weights`, `function_entry_count`) and skipping
    /// everything else. Metadata never fails the parse: any shape outside the
    /// recognised grammar is consumed to the end of the line and dropped.
    fn metadata_definition(&mut self, line: u32) {
        let id = match self.next_token().map(|t| t.kind) {
            Some(TokenKind::Metadata(id)) if !id.is_empty() => id,
            _ => return self.skip_rest_of_line(line),
        };
        if !self.at_punct('=') {
            return self.skip_rest_of_line(line);
        }
        self.next_token();
        if self.at_word("distinct") {
            self.next_token();
        }
        // `!{` lexes as an empty metadata reference followed by the brace.
        if !matches!(self.peek(), Some(t) if matches!(&t.kind, TokenKind::Metadata(m) if m.is_empty()))
        {
            return self.skip_rest_of_line(line);
        }
        self.next_token();
        if !self.at_punct('{') {
            return self.skip_rest_of_line(line);
        }
        self.next_token();
        let kind = match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Metadata(k))
                if k == "branch_weights" || k == "function_entry_count" =>
            {
                self.next_token();
                k
            }
            _ => return self.skip_rest_of_line(line),
        };
        let mut values = Vec::new();
        while self.at_punct(',') {
            self.next_token();
            // Newer LLVM inserts a leading `!"expected"` marker for synthetic weights.
            if matches!(self.peek(), Some(t) if matches!(&t.kind, TokenKind::Metadata(m) if m == "expected"))
            {
                self.next_token();
                continue;
            }
            if self.at_word("i32") || self.at_word("i64") {
                self.next_token();
            } else {
                return self.skip_rest_of_line(line);
            }
            let Ok(v) = self.expect_int() else {
                return self.skip_rest_of_line(line);
            };
            if v < 0 {
                return self.skip_rest_of_line(line);
            }
            values.push(v as u64);
        }
        if !self.at_punct('}') {
            return self.skip_rest_of_line(line);
        }
        self.next_token();
        let def = match kind.as_str() {
            "branch_weights" if !values.is_empty() => MetaDef::BranchWeights(values),
            "function_entry_count" if values.len() == 1 => MetaDef::FunctionEntryCount(values[0]),
            _ => return,
        };
        self.metadata_defs.insert(id, def);
    }

    /// Resolves the recorded `!prof !N` references against the collected metadata
    /// definitions. References whose definition is missing, of the wrong profile
    /// kind for the position, or whose weight count does not match the terminator's
    /// successor count are dropped — normalisation, not an error.
    fn resolve_prof_refs(&mut self, functions: &mut [Function]) {
        for fix in std::mem::take(&mut self.prof_refs) {
            let Some(def) = self.metadata_defs.get(&fix.id) else {
                continue;
            };
            let function = &mut functions[fix.function];
            match (fix.block, def) {
                (None, MetaDef::FunctionEntryCount(n)) => function.entry_count = Some(*n),
                (Some(b), MetaDef::BranchWeights(weights)) => {
                    let block = &mut function.blocks[b];
                    let successors = match &block.term {
                        Terminator::CondBr { .. } => 2,
                        Terminator::Switch { cases, .. } => cases.len() + 1,
                        _ => 0,
                    };
                    if weights.len() == successors {
                        block.prof = Some(weights.clone());
                    }
                }
                _ => {}
            }
        }
    }

    /// Consumes every remaining token on `line` like [`skip_rest_of_line`], but
    /// records a `!prof !N` reference if one appears among the trailing annotations.
    ///
    /// [`skip_rest_of_line`]: Parser::skip_rest_of_line
    fn skip_line_recording_prof(&mut self, line: u32, function: usize, block: Option<usize>) {
        while matches!(self.peek(), Some(t) if t.line == line) {
            let Some(t) = self.next_token() else {
                return;
            };
            if matches!(&t.kind, TokenKind::Metadata(m) if m == "prof") {
                if let Some(next) = self.peek() {
                    if next.line == line {
                        if let TokenKind::Metadata(id) = &next.kind {
                            if !id.is_empty() {
                                let id = id.clone();
                                self.next_token();
                                self.prof_refs.push(ProfRef {
                                    function,
                                    block,
                                    id,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    fn function(&mut self, function_index: usize) -> Result<Function, ParseError> {
        self.expect_word("define")?;
        self.skip_attr_words();
        let ret = self.parse_type()?;
        let name = match self.peek() {
            Some(t) => {
                if let TokenKind::Global(n) = &t.kind {
                    let n = n.clone();
                    self.next_token();
                    n
                } else {
                    return Err(
                        self.error_here(format!("expected a `@function` name, found {}", t.kind))
                    );
                }
            }
            None => return Err(self.error_here("expected a `@function` name")),
        };
        self.expect_punct('(')?;
        let mut params = Vec::new();
        // LLVM's implicit numbering: unnamed parameters take %0, %1, … and an unnamed
        // entry block takes the next number.
        let mut implicit = 0u32;
        if !self.at_punct(')') {
            loop {
                let ty = self.parse_type()?;
                self.skip_attr_words();
                let pname = match self.peek() {
                    Some(t) => {
                        if let TokenKind::Local(n) = &t.kind {
                            let n = n.clone();
                            self.next_token();
                            n
                        } else {
                            let n = implicit.to_string();
                            implicit += 1;
                            n
                        }
                    }
                    None => return Err(self.error_here("unterminated parameter list")),
                };
                params.push(Param { ty, name: pname });
                if self.at_punct(',') {
                    self.next_token();
                } else {
                    break;
                }
            }
        }
        self.expect_punct(')')?;
        // Skip function attributes, attribute-group references and metadata up to the
        // opening brace of the body — keeping the one annotation with content, a
        // `!prof !N` entry-count reference.
        while !self.at_punct('{') {
            let Some(t) = self.next_token() else {
                return Err(self.error_here("expected `{` to open the function body"));
            };
            if matches!(&t.kind, TokenKind::Metadata(m) if m == "prof") {
                if let Some(Token {
                    kind: TokenKind::Metadata(id),
                    ..
                }) = self.peek()
                {
                    if !id.is_empty() {
                        let id = id.clone();
                        self.next_token();
                        self.prof_refs.push(ProfRef {
                            function: function_index,
                            block: None,
                            id,
                        });
                    }
                }
            }
        }
        self.expect_punct('{')?;

        let mut blocks = Vec::new();
        while !self.at_punct('}') {
            let label = self.block_label(&mut implicit, blocks.is_empty())?;
            let block_index = blocks.len();
            let block = self.block(label, function_index, block_index)?;
            blocks.push(block);
        }
        self.expect_punct('}')?;
        if blocks.is_empty() {
            return Err(self.error_here(format!("function @{name} has no basic blocks")));
        }
        Ok(Function {
            name,
            ret,
            params,
            blocks,
            entry_count: None,
        })
    }

    fn block_label(&mut self, implicit: &mut u32, is_entry: bool) -> Result<String, ParseError> {
        // A label is `name:` or `N:` on its own line; an unlabelled entry block takes
        // the next implicit number.
        let labelled = matches!(
            (self.peek(), self.peek2()),
            (Some(t1), Some(t2))
                if matches!(t1.kind, TokenKind::Word(_) | TokenKind::Int(_))
                    && t2.kind == TokenKind::Punct(':')
        );
        if labelled {
            let name = match self.next_token().map(|t| t.kind) {
                Some(TokenKind::Word(w)) => w,
                Some(TokenKind::Int(v)) => v.to_string(),
                _ => unreachable!("guarded by `labelled`"),
            };
            self.expect_punct(':')?;
            Ok(name)
        } else if is_entry {
            let name = implicit.to_string();
            *implicit += 1;
            Ok(name)
        } else {
            Err(self.error_here("expected a block label"))
        }
    }

    fn block(
        &mut self,
        label: String,
        function_index: usize,
        block_index: usize,
    ) -> Result<Block, ParseError> {
        let mut insts = Vec::new();
        loop {
            let Some(t) = self.peek() else {
                return Err(self.error_here(format!("block `{label}` has no terminator")));
            };
            let line = t.line;
            if let TokenKind::Word(w) = &t.kind {
                if matches!(w.as_str(), "ret" | "br" | "switch" | "unreachable") {
                    let term = self.terminator()?;
                    self.skip_line_recording_prof(
                        self.last_line,
                        function_index,
                        Some(block_index),
                    );
                    return Ok(Block {
                        label,
                        insts,
                        term,
                        prof: None,
                    });
                }
            }
            insts.push((line, self.instruction()?));
            self.skip_rest_of_line(line);
        }
    }

    fn terminator(&mut self) -> Result<Terminator, ParseError> {
        if self.at_word("unreachable") {
            self.next_token();
            return Ok(Terminator::Unreachable);
        }
        if self.at_word("ret") {
            self.next_token();
            if self.at_word("void") {
                self.next_token();
                return Ok(Terminator::RetVoid);
            }
            let ty = self.parse_type()?;
            let value = self.parse_value()?;
            return Ok(Terminator::Ret { ty, value });
        }
        if self.at_word("br") {
            self.next_token();
            if self.at_word("label") {
                self.next_token();
                let dest = self.expect_local()?;
                return Ok(Terminator::Br { dest });
            }
            let _ty = self.parse_type()?;
            let cond = self.parse_value()?;
            self.expect_punct(',')?;
            self.expect_word("label")?;
            let then_dest = self.expect_local()?;
            self.expect_punct(',')?;
            self.expect_word("label")?;
            let else_dest = self.expect_local()?;
            return Ok(Terminator::CondBr {
                cond,
                then_dest,
                else_dest,
            });
        }
        if self.at_word("switch") {
            self.next_token();
            let ty = self.parse_type()?;
            let value = self.parse_value()?;
            self.expect_punct(',')?;
            self.expect_word("label")?;
            let default = self.expect_local()?;
            self.expect_punct('[')?;
            let mut cases = Vec::new();
            while !self.at_punct(']') {
                let _case_ty = self.parse_type()?;
                let case = self.expect_int()?;
                self.expect_punct(',')?;
                self.expect_word("label")?;
                let dest = self.expect_local()?;
                cases.push((case, dest));
            }
            self.expect_punct(']')?;
            return Ok(Terminator::Switch {
                ty,
                value,
                default,
                cases,
            });
        }
        Err(self.error_here("expected a terminator"))
    }

    fn instruction(&mut self) -> Result<Inst, ParseError> {
        match self.peek() {
            Some(t) => match &t.kind {
                TokenKind::Local(name) => {
                    let result = name.clone();
                    self.next_token();
                    self.expect_punct('=')?;
                    self.valued_instruction(result)
                }
                TokenKind::Word(w) if w == "store" => self.store(),
                TokenKind::Word(w)
                    if matches!(w.as_str(), "call" | "tail" | "musttail" | "notail") =>
                {
                    self.call(None)
                }
                other => Err(self.error_here(format!("unsupported instruction {other}"))),
            },
            None => Err(self.error_here("expected an instruction")),
        }
    }

    fn valued_instruction(&mut self, result: String) -> Result<Inst, ParseError> {
        let Some(t) = self.peek() else {
            return Err(self.error_here("expected an opcode"));
        };
        let TokenKind::Word(op) = t.kind.clone() else {
            return Err(self.error_here(format!("expected an opcode, found {}", t.kind)));
        };
        match op.as_str() {
            "add" | "sub" | "mul" | "sdiv" | "udiv" | "srem" | "urem" | "shl" | "lshr" | "ashr"
            | "and" | "or" | "xor" => {
                self.next_token();
                let binop = match op.as_str() {
                    "add" => BinOp::Add,
                    "sub" => BinOp::Sub,
                    "mul" => BinOp::Mul,
                    "sdiv" => BinOp::Sdiv,
                    "udiv" => BinOp::Udiv,
                    "srem" => BinOp::Srem,
                    "urem" => BinOp::Urem,
                    "shl" => BinOp::Shl,
                    "lshr" => BinOp::Lshr,
                    "ashr" => BinOp::Ashr,
                    "and" => BinOp::And,
                    "or" => BinOp::Or,
                    _ => BinOp::Xor,
                };
                // Wrap/exactness flags do not change dataflow.
                while self.at_word("nsw") || self.at_word("nuw") || self.at_word("exact") {
                    self.next_token();
                }
                let ty = self.parse_type()?;
                let lhs = self.parse_value()?;
                self.expect_punct(',')?;
                let rhs = self.parse_value()?;
                Ok(Inst::Binary {
                    result,
                    op: binop,
                    ty,
                    lhs,
                    rhs,
                })
            }
            "icmp" => {
                self.next_token();
                let Some(t) = self.peek() else {
                    return Err(self.error_here("expected an icmp predicate"));
                };
                let TokenKind::Word(pred_word) = t.kind.clone() else {
                    return Err(self.error_here("expected an icmp predicate"));
                };
                let pred = match pred_word.as_str() {
                    "eq" => IcmpPred::Eq,
                    "ne" => IcmpPred::Ne,
                    "slt" => IcmpPred::Slt,
                    "sle" => IcmpPred::Sle,
                    "sgt" => IcmpPred::Sgt,
                    "sge" => IcmpPred::Sge,
                    "ult" => IcmpPred::Ult,
                    "ule" => IcmpPred::Ule,
                    "ugt" => IcmpPred::Ugt,
                    "uge" => IcmpPred::Uge,
                    other => {
                        return Err(self.error_here(format!("unknown icmp predicate `{other}`")));
                    }
                };
                self.next_token();
                let ty = self.parse_type()?;
                let lhs = self.parse_value()?;
                self.expect_punct(',')?;
                let rhs = self.parse_value()?;
                Ok(Inst::Icmp {
                    result,
                    pred,
                    ty,
                    lhs,
                    rhs,
                })
            }
            "select" => {
                self.next_token();
                let _cond_ty = self.parse_type()?;
                let cond = self.parse_value()?;
                self.expect_punct(',')?;
                let ty = self.parse_type()?;
                let then_value = self.parse_value()?;
                self.expect_punct(',')?;
                let _else_ty = self.parse_type()?;
                let else_value = self.parse_value()?;
                Ok(Inst::Select {
                    result,
                    cond,
                    ty,
                    then_value,
                    else_value,
                })
            }
            "sext" | "zext" | "trunc" | "bitcast" | "ptrtoint" | "inttoptr" => {
                self.next_token();
                let cast = match op.as_str() {
                    "sext" => CastOp::Sext,
                    "zext" => CastOp::Zext,
                    "trunc" => CastOp::Trunc,
                    "bitcast" => CastOp::Bitcast,
                    "ptrtoint" => CastOp::Ptrtoint,
                    _ => CastOp::Inttoptr,
                };
                let from = self.parse_type()?;
                let value = self.parse_value()?;
                self.expect_word("to")?;
                let to = self.parse_type()?;
                Ok(Inst::Cast {
                    result,
                    op: cast,
                    from,
                    value,
                    to,
                })
            }
            "freeze" => {
                self.next_token();
                let ty = self.parse_type()?;
                let value = self.parse_value()?;
                Ok(Inst::Freeze { result, ty, value })
            }
            "load" => {
                self.next_token();
                if self.at_word("volatile") {
                    self.next_token();
                }
                let ty = self.parse_type()?;
                self.expect_punct(',')?;
                let ptr_ty = self.parse_type()?;
                let ptr = self.parse_value()?;
                Ok(Inst::Load {
                    result,
                    ty,
                    ptr_ty,
                    ptr,
                })
            }
            "alloca" => {
                self.next_token();
                let ty = self.parse_type()?;
                Ok(Inst::Alloca { result, ty })
            }
            "getelementptr" => {
                self.next_token();
                if self.at_word("inbounds") {
                    self.next_token();
                }
                let base_ty = self.parse_type()?;
                self.expect_punct(',')?;
                let ptr_ty = self.parse_type()?;
                let ptr = self.parse_value()?;
                let mut indices = Vec::new();
                while self.at_punct(',') {
                    // A comma is followed either by another `<ty> <idx>` pair or by
                    // trailing annotations handled by the caller's line skip.
                    let saved = self.pos;
                    self.next_token();
                    if self.at_type_start() {
                        let ty = self.parse_type()?;
                        let idx = self.parse_value()?;
                        indices.push((ty, idx));
                    } else {
                        self.pos = saved;
                        break;
                    }
                }
                if indices.is_empty() {
                    return Err(self.error_here("getelementptr requires at least one index"));
                }
                Ok(Inst::Gep {
                    result,
                    base_ty,
                    ptr_ty,
                    ptr,
                    indices,
                })
            }
            "phi" => {
                self.next_token();
                let ty = self.parse_type()?;
                let mut incoming = Vec::new();
                loop {
                    self.expect_punct('[')?;
                    let value = self.parse_value()?;
                    self.expect_punct(',')?;
                    let pred = self.expect_local()?;
                    self.expect_punct(']')?;
                    incoming.push((value, pred));
                    if self.at_punct(',') {
                        self.next_token();
                    } else {
                        break;
                    }
                }
                Ok(Inst::Phi {
                    result,
                    ty,
                    incoming,
                })
            }
            "call" | "tail" | "musttail" | "notail" => self.call(Some(result)),
            other => Err(self.error_here(format!("unsupported opcode `{other}`"))),
        }
    }

    fn store(&mut self) -> Result<Inst, ParseError> {
        self.expect_word("store")?;
        if self.at_word("volatile") {
            self.next_token();
        }
        let ty = self.parse_type()?;
        let value = self.parse_value()?;
        self.expect_punct(',')?;
        let ptr_ty = self.parse_type()?;
        let ptr = self.parse_value()?;
        Ok(Inst::Store {
            ty,
            value,
            ptr_ty,
            ptr,
        })
    }

    fn call(&mut self, result: Option<String>) -> Result<Inst, ParseError> {
        while self.at_word("tail") || self.at_word("musttail") || self.at_word("notail") {
            self.next_token();
        }
        self.expect_word("call")?;
        self.skip_attr_words();
        let ret = self.parse_type()?;
        // A varargs callee carries its full function type: `call i32 (i8*, ...) @f(…)`.
        if self.at_punct('(') {
            self.skip_balanced('(', ')');
            while self.at_punct('*') {
                self.next_token();
            }
        }
        let callee = match self.peek() {
            Some(t) => match &t.kind {
                TokenKind::Global(n) => {
                    let n = n.clone();
                    self.next_token();
                    n
                }
                TokenKind::Local(_) => {
                    return Err(self.error_here("indirect calls are unsupported"));
                }
                other => {
                    return Err(self.error_here(format!("expected a callee, found {other}")));
                }
            },
            None => return Err(self.error_here("expected a callee")),
        };
        self.expect_punct('(')?;
        let mut args = Vec::new();
        if !self.at_punct(')') {
            loop {
                let ty = self.parse_type()?;
                self.skip_attr_words();
                let value = self.parse_value()?;
                args.push((ty, value));
                if self.at_punct(',') {
                    self.next_token();
                } else {
                    break;
                }
            }
        }
        self.expect_punct(')')?;
        let result = if ret == Ty::Void { None } else { result };
        Ok(Inst::Call {
            result,
            ret,
            callee,
            args,
        })
    }
}
