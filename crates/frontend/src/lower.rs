//! Lowering from the parsed LLVM AST to [`ise_ir::Program`].
//!
//! # Mapping policy
//!
//! One basic block becomes one [`Dfg`] named `<function>.<label>`. The lowering is
//! *honest about ports*: every value that crosses the block boundary is materialised,
//! so the `IN(S)`/`OUT(S)` accounting of the identification algorithms matches what a
//! register-file implementation would observe.
//!
//! * **Function arguments, globals and values defined in other blocks** become block
//!   input variables (`V⁺` of the paper), created on first use.
//! * **φ-nodes** become block input variables, not operation nodes: a φ is the arrival
//!   of a value in a register, exactly what an input variable models.
//! * **Block outputs** are the values defined in a block and used outside it — by
//!   instructions of other blocks, by φ incoming values anywhere (including the
//!   defining block itself, which is how loop back-edges appear), or by the block's own
//!   terminator.
//! * **Terminators** produce no nodes; their data operands (returned values, branch
//!   conditions, switch scrutinees) are treated as external uses so they surface as
//!   block outputs.
//! * **Loads and stores** become [`Opcode::Load`]/[`Opcode::Store`] nodes — present in
//!   the graph, forbidden inside cuts (the paper's AFU has no memory port).
//! * **Calls, `getelementptr` and `alloca`** become [`Opcode::Opaque`] nodes (also
//!   forbidden), except the integer intrinsics `llvm.smax`/`llvm.smin`/`llvm.abs`,
//!   which map to [`Opcode::Max`]/[`Opcode::Min`]/[`Opcode::Abs`].
//! * **Casts** map width-wise: the IR models 32-bit integers, so only the sub-word
//!   extensions/truncations (`i8`/`i16`, plus `i1` tricks) produce real operations;
//!   all remaining casts (`bitcast`, `ptrtoint`, `inttoptr`, `freeze`, wider-than-word
//!   extensions) lower to [`Opcode::Copy`].
//! * `sub 0, x` lowers to [`Opcode::Neg`] and `xor x, -1` to [`Opcode::Not`], the
//!   idioms LLVM uses for negation and complement.
//!
//! * **Execution counts** come from `!prof` metadata when the module carries it: a
//!   block's count is the sum of the branch weights on its weighted incoming edges
//!   (`br i1` successor order [then, else], `switch` order [default, cases…]), with
//!   the `function_entry_count` as the entry block's fallback. Branch weights are
//!   taken at face value as execution counts — exact for instrumentation profiles,
//!   a scale-free approximation for sampled ones. Unprofiled blocks default to 1;
//!   use [`Dfg::set_exec_count`] to attach weights afterwards.

use crate::ast::{BinOp, Block, CastOp, Function, IcmpPred, Inst, Module, Terminator, Ty, Value};
use crate::FrontendError;
use ise_ir::{Dfg, Node, OpaqueOp, Opcode, Operand, Program};
use std::collections::{HashMap, HashSet};

/// Lowers every function of a parsed module into one [`Program`].
///
/// Blocks are named `<function>.<label>`; functions contribute blocks in source order.
///
/// # Errors
///
/// Returns a [`FrontendError`] if an instruction uses a value before its definition
/// within a block (invalid SSA that valid compiler output never produces).
pub fn lower_module(module: &Module, program_name: &str) -> Result<Program, FrontendError> {
    let mut program = Program::new(program_name);
    for function in &module.functions {
        lower_function_into(&mut program, function)?;
    }
    Ok(program)
}

/// Lowers each function of a parsed module into its own [`Program`].
///
/// The slice for function `@f` is named `<program_name>.<f>` and carries exactly the
/// blocks [`lower_module`] would produce for `@f` — slicing chooses which program a
/// block lands in, never what the block contains. Each slice is therefore
/// byte-identical to lowering that function's source on its own, which is what the
/// corpus paths rely on: per-program knobs (instruction budgets, selection) apply per
/// function instead of to an accidental merge of every `define` in the file.
///
/// # Errors
///
/// Exactly as [`lower_module`].
pub fn lower_module_functions(
    module: &Module,
    program_name: &str,
) -> Result<Vec<Program>, FrontendError> {
    let mut programs = Vec::with_capacity(module.functions.len());
    for function in &module.functions {
        let mut program = Program::new(format!("{program_name}.{}", function.name));
        lower_function_into(&mut program, function)?;
        programs.push(program);
    }
    Ok(programs)
}

/// Lowers every block of one function, with its `!prof` execution counts, into
/// `program` — the shared body of [`lower_module`] and [`lower_module_functions`].
fn lower_function_into(program: &mut Program, function: &Function) -> Result<(), FrontendError> {
    let uses = collect_uses(function);
    let exec_counts = block_exec_counts(function);
    for (block, exec) in function.blocks.iter().zip(exec_counts) {
        let mut dfg = lower_block(function, &uses, block)?;
        dfg.set_exec_count(exec);
        program.add_block(dfg);
    }
    Ok(())
}

/// Infers per-block execution counts from `!prof` metadata, in block order.
///
/// Each weighted terminator (`br i1`/`switch` with branch weights) contributes its
/// per-successor weight to the destination block; a block's count is the sum over
/// its weighted incoming edges. Blocks with no weighted incoming edge fall back to
/// the function's entry count (entry block) or 1 (everything else) — so a module
/// without profile data lowers exactly as before, every block at count 1.
fn block_exec_counts(function: &Function) -> Vec<u64> {
    let index: HashMap<&str, usize> = function
        .blocks
        .iter()
        .enumerate()
        .map(|(i, block)| (block.label.as_str(), i))
        .collect();
    let mut weighted: Vec<Option<u64>> = vec![None; function.blocks.len()];
    for block in &function.blocks {
        let Some(weights) = &block.prof else {
            continue;
        };
        let successors: Vec<&str> = match &block.term {
            Terminator::CondBr {
                then_dest,
                else_dest,
                ..
            } => vec![then_dest, else_dest],
            Terminator::Switch { default, cases, .. } => {
                let mut dests = vec![default.as_str()];
                dests.extend(cases.iter().map(|(_, dest)| dest.as_str()));
                dests
            }
            _ => continue,
        };
        for (dest, weight) in successors.into_iter().zip(weights) {
            if let Some(&i) = index.get(dest) {
                weighted[i] = Some(weighted[i].unwrap_or(0).saturating_add(*weight));
            }
        }
    }
    weighted
        .iter()
        .enumerate()
        .map(|(i, count)| {
            count.unwrap_or_else(|| {
                if i == 0 {
                    function.entry_count.unwrap_or(1)
                } else {
                    1
                }
            })
        })
        .collect()
}

/// The values used outside their defining block, split by the kind of use.
struct ExternalUses {
    /// Local names used as φ incoming values anywhere in the function.
    phi_uses: HashSet<String>,
    /// Local names used by non-φ instructions, keyed by using block label.
    inst_uses: HashMap<String, HashSet<String>>,
    /// Local names used by terminators, keyed by block label.
    term_uses: HashMap<String, HashSet<String>>,
}

fn collect_uses(function: &Function) -> ExternalUses {
    let mut phi_uses = HashSet::new();
    let mut inst_uses: HashMap<String, HashSet<String>> = HashMap::new();
    let mut term_uses: HashMap<String, HashSet<String>> = HashMap::new();
    for block in &function.blocks {
        let inst_set = inst_uses.entry(block.label.clone()).or_default();
        for (_, inst) in &block.insts {
            if matches!(inst, Inst::Phi { .. }) {
                inst.for_each_operand(|v| {
                    if let Value::Local(name) = v {
                        phi_uses.insert(name.clone());
                    }
                });
            } else {
                inst.for_each_operand(|v| {
                    if let Value::Local(name) = v {
                        inst_set.insert(name.clone());
                    }
                });
            }
        }
        let term_set = term_uses.entry(block.label.clone()).or_default();
        block.term.for_each_operand(|v| {
            if let Value::Local(name) = v {
                term_set.insert(name.clone());
            }
        });
    }
    ExternalUses {
        phi_uses,
        inst_uses,
        term_uses,
    }
}

/// Returns the names defined in `block` (φ and non-φ results alike) that are used
/// outside it, in definition order.
fn live_out_names(uses: &ExternalUses, block: &Block) -> Vec<String> {
    let defined: Vec<&str> = block
        .insts
        .iter()
        .filter_map(|(_, inst)| inst.result())
        .collect();
    let mut live: Vec<String> = Vec::new();
    for name in defined {
        let used_elsewhere = uses.phi_uses.contains(name)
            || uses
                .inst_uses
                .iter()
                .any(|(label, set)| label != &block.label && set.contains(name))
            || uses
                .term_uses
                .iter()
                .any(|(label, set)| label != &block.label && set.contains(name))
            || uses
                .term_uses
                .get(&block.label)
                .is_some_and(|set| set.contains(name));
        if used_elsewhere && !live.contains(&name.to_string()) {
            live.push(name.to_string());
        }
    }
    live
}

fn lower_block(
    function: &Function,
    uses: &ExternalUses,
    block: &Block,
) -> Result<Dfg, FrontendError> {
    let mut dfg = Dfg::new(format!("{}.{}", function.name, block.label));
    // Values available as operands: parameters/globals/other-block values become
    // inputs on demand; same-block results resolve to their node.
    let mut env: HashMap<String, Operand> = HashMap::new();
    let mut input_ports: HashMap<String, Operand> = HashMap::new();
    // Non-φ results of this block, for use-before-def detection: a local that *will*
    // be defined here but has not been yet is invalid SSA, not an external value.
    let defined_here: HashSet<&str> = block
        .insts
        .iter()
        .filter(|(_, inst)| !matches!(inst, Inst::Phi { .. }))
        .filter_map(|(_, inst)| inst.result())
        .collect();

    // φ results become inputs up front (LLVM places φs at the block head).
    for (_, inst) in &block.insts {
        if let Inst::Phi { result, .. } = inst {
            let port = dfg.add_input(result.clone());
            env.insert(result.clone(), Operand::Input(port));
            input_ports.insert(result.clone(), Operand::Input(port));
        }
    }

    for (line, inst) in &block.insts {
        if matches!(inst, Inst::Phi { .. }) {
            continue;
        }
        let mut read = |dfg: &mut Dfg, env: &mut HashMap<String, Operand>, v: &Value| {
            read_value(dfg, env, &mut input_ports, &defined_here, block, *line, v)
        };
        let produced: Option<(String, Operand)> = match inst {
            Inst::Binary {
                result,
                op,
                lhs,
                rhs,
                ..
            } => {
                let l = read(&mut dfg, &mut env, lhs)?;
                let r = read(&mut dfg, &mut env, rhs)?;
                let node = match (op, l, r) {
                    // LLVM spells negation `sub 0, x` and complement `xor x, -1`.
                    (BinOp::Sub, Operand::Imm(0), r) => Node::named(Opcode::Neg, vec![r], result),
                    (BinOp::Xor, l, Operand::Imm(-1)) => Node::named(Opcode::Not, vec![l], result),
                    (BinOp::Xor, Operand::Imm(-1), r) => Node::named(Opcode::Not, vec![r], result),
                    (op, l, r) => {
                        let opcode = match op {
                            BinOp::Add => Opcode::Add,
                            BinOp::Sub => Opcode::Sub,
                            BinOp::Mul => Opcode::Mul,
                            BinOp::Sdiv | BinOp::Udiv => Opcode::Div,
                            BinOp::Srem | BinOp::Urem => Opcode::Rem,
                            BinOp::Shl => Opcode::Shl,
                            BinOp::Lshr => Opcode::Lshr,
                            BinOp::Ashr => Opcode::Ashr,
                            BinOp::And => Opcode::And,
                            BinOp::Or => Opcode::Or,
                            BinOp::Xor => Opcode::Xor,
                        };
                        Node::named(opcode, vec![l, r], result)
                    }
                };
                let id = try_add(&mut dfg, node, *line)?;
                Some((result.clone(), Operand::Node(id)))
            }
            Inst::Icmp {
                result,
                pred,
                lhs,
                rhs,
                ..
            } => {
                let l = read(&mut dfg, &mut env, lhs)?;
                let r = read(&mut dfg, &mut env, rhs)?;
                // The vocabulary has no unsigned-gt/le: swap the operands instead.
                let (opcode, a, b) = match pred {
                    IcmpPred::Eq => (Opcode::Eq, l, r),
                    IcmpPred::Ne => (Opcode::Ne, l, r),
                    IcmpPred::Slt => (Opcode::Lt, l, r),
                    IcmpPred::Sle => (Opcode::Le, l, r),
                    IcmpPred::Sgt => (Opcode::Gt, l, r),
                    IcmpPred::Sge => (Opcode::Ge, l, r),
                    IcmpPred::Ult => (Opcode::Ltu, l, r),
                    IcmpPred::Uge => (Opcode::Geu, l, r),
                    IcmpPred::Ugt => (Opcode::Ltu, r, l),
                    IcmpPred::Ule => (Opcode::Geu, r, l),
                };
                let id = try_add(&mut dfg, Node::named(opcode, vec![a, b], result), *line)?;
                Some((result.clone(), Operand::Node(id)))
            }
            Inst::Select {
                result,
                cond,
                then_value,
                else_value,
                ..
            } => {
                let c = read(&mut dfg, &mut env, cond)?;
                let t = read(&mut dfg, &mut env, then_value)?;
                let e = read(&mut dfg, &mut env, else_value)?;
                let id = try_add(
                    &mut dfg,
                    Node::named(Opcode::Select, vec![c, t, e], result),
                    *line,
                )?;
                Some((result.clone(), Operand::Node(id)))
            }
            Inst::Cast {
                result,
                op,
                from,
                value,
                to,
            } => {
                let v = read(&mut dfg, &mut env, value)?;
                let node = lower_cast(*op, from, to, v, result);
                let id = try_add(&mut dfg, node, *line)?;
                Some((result.clone(), Operand::Node(id)))
            }
            Inst::Freeze { result, value, .. } => {
                let v = read(&mut dfg, &mut env, value)?;
                let id = try_add(&mut dfg, Node::named(Opcode::Copy, vec![v], result), *line)?;
                Some((result.clone(), Operand::Node(id)))
            }
            Inst::Load { result, ptr, .. } => {
                let p = read(&mut dfg, &mut env, ptr)?;
                let id = try_add(&mut dfg, Node::named(Opcode::Load, vec![p], result), *line)?;
                Some((result.clone(), Operand::Node(id)))
            }
            Inst::Store { value, ptr, .. } => {
                let v = read(&mut dfg, &mut env, value)?;
                let p = read(&mut dfg, &mut env, ptr)?;
                try_add(&mut dfg, Node::new(Opcode::Store, vec![p, v]), *line)?;
                None
            }
            Inst::Gep {
                result,
                ptr,
                indices,
                ..
            } => {
                let mut operands = vec![read(&mut dfg, &mut env, ptr)?];
                for (_, idx) in indices {
                    operands.push(read(&mut dfg, &mut env, idx)?);
                }
                let id = try_add(
                    &mut dfg,
                    Node::named(Opcode::Opaque(OpaqueOp::Gep), operands, result),
                    *line,
                )?;
                Some((result.clone(), Operand::Node(id)))
            }
            Inst::Alloca { result, .. } => {
                let id = try_add(
                    &mut dfg,
                    Node::named(Opcode::Opaque(OpaqueOp::Alloca), Vec::new(), result),
                    *line,
                )?;
                Some((result.clone(), Operand::Node(id)))
            }
            Inst::Call {
                result,
                callee,
                args,
                ..
            } => {
                let mut operands = Vec::with_capacity(args.len());
                for (_, arg) in args {
                    operands.push(read(&mut dfg, &mut env, arg)?);
                }
                let node = lower_call(result.as_deref(), callee, operands);
                let has_result = node.opcode.has_result();
                let id = try_add(&mut dfg, node, *line)?;
                match (result, has_result) {
                    (Some(r), true) => Some((r.clone(), Operand::Node(id))),
                    _ => None,
                }
            }
            Inst::Phi { .. } => unreachable!("φs are skipped above"),
        };
        if let Some((name, operand)) = produced {
            env.insert(name, operand);
        }
    }

    for name in live_out_names(uses, block) {
        let source = env.get(&name).copied().unwrap_or_else(|| {
            unreachable!("live-out `{name}` is defined in the block, so it is in the env")
        });
        dfg.add_output(name, source);
    }
    Ok(dfg)
}

#[allow(clippy::too_many_arguments)]
fn read_value(
    dfg: &mut Dfg,
    env: &mut HashMap<String, Operand>,
    input_ports: &mut HashMap<String, Operand>,
    defined_here: &HashSet<&str>,
    block: &Block,
    line: u32,
    value: &Value,
) -> Result<Operand, FrontendError> {
    match value {
        Value::Int(v) => Ok(Operand::Imm(*v)),
        Value::Undef => Ok(Operand::Imm(0)),
        Value::Global(name) => {
            // Globals are addresses produced outside the block: inputs, named with
            // their sigil so they can never collide with a local.
            let key = format!("@{name}");
            if let Some(op) = input_ports.get(&key) {
                return Ok(*op);
            }
            let port = dfg.add_input(key.clone());
            input_ports.insert(key, Operand::Input(port));
            Ok(Operand::Input(port))
        }
        Value::Local(name) => {
            if let Some(op) = env.get(name.as_str()) {
                return Ok(*op);
            }
            if defined_here.contains(name.as_str()) {
                // The name is defined later in this block: invalid SSA, and the one
                // way a front-end could hand `Dfg::try_add_node` a forward reference.
                return Err(FrontendError {
                    line,
                    column: 1,
                    message: format!(
                        "`%{name}` is used before its definition in block `{}` (invalid SSA)",
                        block.label
                    ),
                });
            }
            if let Some(op) = input_ports.get(name.as_str()) {
                return Ok(*op);
            }
            let port = dfg.add_input(name.clone());
            let op = Operand::Input(port);
            input_ports.insert(name.clone(), op);
            env.insert(name.clone(), op);
            Ok(op)
        }
    }
}

fn try_add(dfg: &mut Dfg, node: Node, line: u32) -> Result<ise_ir::NodeId, FrontendError> {
    dfg.try_add_node(node).map_err(|e| FrontendError {
        line,
        column: 1,
        message: e.to_string(),
    })
}

/// Maps a cast onto the 32-bit vocabulary by the widths involved.
fn lower_cast(op: CastOp, from: &Ty, to: &Ty, v: Operand, result: &str) -> Node {
    let bits = |ty: &Ty| match ty {
        Ty::Int(bits) => Some(*bits),
        _ => None,
    };
    match op {
        CastOp::Sext => match bits(from) {
            Some(8) => Node::named(Opcode::SextB, vec![v], result),
            Some(16) => Node::named(Opcode::SextH, vec![v], result),
            // sext i1 x = -x (0 → 0, 1 → −1).
            Some(1) => Node::named(Opcode::Neg, vec![v], result),
            _ => Node::named(Opcode::Copy, vec![v], result),
        },
        CastOp::Zext => match bits(from) {
            Some(8) => Node::named(Opcode::ZextB, vec![v], result),
            Some(16) => Node::named(Opcode::ZextH, vec![v], result),
            // An i1 is already 0 or 1.
            _ => Node::named(Opcode::Copy, vec![v], result),
        },
        CastOp::Trunc => match bits(to) {
            Some(8) => Node::named(Opcode::TruncB, vec![v], result),
            Some(16) => Node::named(Opcode::TruncH, vec![v], result),
            Some(1) => Node::named(Opcode::And, vec![v, Operand::Imm(1)], result),
            _ => Node::named(Opcode::Copy, vec![v], result),
        },
        // Pointer/bit reinterpretations move a value unchanged through a register.
        CastOp::Bitcast | CastOp::Ptrtoint | CastOp::Inttoptr => {
            Node::named(Opcode::Copy, vec![v], result)
        }
    }
}

/// Maps a call: the handful of integer intrinsics with vocabulary equivalents become
/// real operations; everything else stays an opaque (forbidden) call node.
fn lower_call(result: Option<&str>, callee: &str, operands: Vec<Operand>) -> Node {
    let named = |opcode: Opcode, operands: Vec<Operand>| match result {
        Some(r) => Node::named(opcode, operands, r),
        None => Node::new(opcode, operands),
    };
    if callee.starts_with("llvm.smax.") && operands.len() == 2 {
        return named(Opcode::Max, operands);
    }
    if callee.starts_with("llvm.smin.") && operands.len() == 2 {
        return named(Opcode::Min, operands);
    }
    // llvm.abs takes a trailing i1 poison flag.
    if callee.starts_with("llvm.abs.") && !operands.is_empty() {
        return named(Opcode::Abs, vec![operands[0]]);
    }
    let opcode = if result.is_some() {
        Opcode::Opaque(OpaqueOp::Call)
    } else {
        Opcode::Opaque(OpaqueOp::CallVoid)
    };
    match result {
        Some(_) => named(opcode, operands),
        None => Node::named(opcode, operands, callee),
    }
}
