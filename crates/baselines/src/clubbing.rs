//! The Clubbing baseline (Baleani et al., CODES 2002).

use ise_core::cut::{self, CutSet};
use ise_core::{Constraints, IdentifiedCut};
use ise_hw::CostModel;
use ise_ir::Dfg;

use crate::IdentificationAlgorithm;

/// Greedy linear clustering ("clubbing") of dataflow operations.
///
/// Operations are visited once, in dataflow (def-before-use) order. Each operation is
/// *clubbed* with the cluster of one of its producers whenever the merged cluster still
/// satisfies the input/output port constraints, remains convex and stays legal (no memory
/// operations); otherwise the operation opens a new cluster of its own. The first
/// feasible producer cluster is taken — the hallmark greediness of the original
/// technique, which the paper contrasts with its exhaustive search: clusters stay small
/// and local, and never span disconnected pieces of the graph.
#[derive(Debug, Clone, Copy, Default)]
pub struct Clubbing;

impl Clubbing {
    /// Creates the algorithm.
    #[must_use]
    pub fn new() -> Self {
        Clubbing
    }

    /// Clusters `dfg` under the port constraints and returns the clusters.
    #[must_use]
    pub fn cluster(dfg: &Dfg, constraints: Constraints) -> Vec<CutSet> {
        let mut clusters: Vec<CutSet> = Vec::new();
        // Index of the cluster each node currently belongs to.
        let mut cluster_of: Vec<Option<usize>> = vec![None; dfg.node_count()];
        for (id, node) in dfg.iter_nodes() {
            if node.is_forbidden_in_afu() {
                continue;
            }
            let mut placed = false;
            // Try to join the cluster of each producer, in operand order.
            for producer in node.node_operands() {
                let Some(cluster_index) = cluster_of[producer.index()] else {
                    continue;
                };
                let mut merged = clusters[cluster_index].clone();
                merged.insert(id);
                let inputs = cut::input_count(dfg, &merged);
                let outputs = cut::output_count(dfg, &merged);
                if constraints.ports_ok(inputs, outputs)
                    && constraints.budget_ok(0.0, merged.len())
                    && cut::is_convex(dfg, &merged)
                {
                    clusters[cluster_index] = merged;
                    cluster_of[id.index()] = Some(cluster_index);
                    placed = true;
                    break;
                }
            }
            if !placed {
                let mut cluster = CutSet::for_dfg(dfg);
                cluster.insert(id);
                let inputs = cut::input_count(dfg, &cluster);
                let outputs = cut::output_count(dfg, &cluster);
                if constraints.ports_ok(inputs, outputs) {
                    cluster_of[id.index()] = Some(clusters.len());
                    clusters.push(cluster);
                }
            }
        }
        clusters
    }
}

impl IdentificationAlgorithm for Clubbing {
    fn name(&self) -> &'static str {
        "Clubbing"
    }

    fn candidates(
        &self,
        dfg: &Dfg,
        constraints: Constraints,
        model: &dyn CostModel,
    ) -> Vec<IdentifiedCut> {
        Self::cluster(dfg, constraints)
            .into_iter()
            .map(|set| {
                let evaluation = cut::evaluate(dfg, &set, model);
                IdentifiedCut {
                    cut: set,
                    evaluation,
                }
            })
            .filter(|candidate| {
                candidate.evaluation.merit > 0.0
                    && candidate.evaluation.convex
                    && constraints
                        .ports_ok(candidate.evaluation.inputs, candidate.evaluation.outputs)
                    && constraints.budget_ok(candidate.evaluation.area, candidate.evaluation.nodes)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn chain() -> Dfg {
        let mut b = DfgBuilder::new("chain");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.mul(x, y);
        let a = b.add(m, y);
        let s = b.shl(a, b.imm(3));
        let t = b.xor(s, x);
        b.output("o", t);
        b.finish()
    }

    #[test]
    fn clusters_are_disjoint_and_feasible() {
        let g = chain();
        let constraints = Constraints::new(2, 1);
        let clusters = Clubbing::cluster(&g, constraints);
        let mut seen = vec![false; g.node_count()];
        for cluster in &clusters {
            assert!(!cluster.is_empty());
            assert!(cut::is_convex(&g, cluster));
            assert!(constraints.ports_ok(
                cut::input_count(&g, cluster),
                cut::output_count(&g, cluster)
            ));
            for id in cluster.iter() {
                assert!(!seen[id.index()]);
                seen[id.index()] = true;
            }
        }
    }

    #[test]
    fn a_pure_chain_is_clubbed_into_one_cluster() {
        let g = chain();
        // The whole chain has 2 inputs and 1 output, so generous ports keep it together.
        let clusters = Clubbing::cluster(&g, Constraints::new(4, 2));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 4);
    }

    #[test]
    fn tight_ports_split_the_chain() {
        let mut b = DfgBuilder::new("wide");
        let inputs: Vec<_> = (0..6).map(|i| b.input(format!("x{i}"))).collect();
        let a = b.add(inputs[0], inputs[1]);
        let c = b.add(a, inputs[2]);
        let d = b.add(c, inputs[3]);
        let e = b.add(d, inputs[4]);
        let f = b.add(e, inputs[5]);
        b.output("o", f);
        let g = b.finish();
        let tight = Clubbing::cluster(&g, Constraints::new(2, 1));
        let loose = Clubbing::cluster(&g, Constraints::new(8, 1));
        assert!(tight.len() > loose.len());
        assert_eq!(loose.len(), 1);
    }

    #[test]
    fn memory_operations_break_clusters() {
        let mut b = DfgBuilder::new("mem");
        let base = b.input("base");
        let x = b.input("x");
        let addr = b.add(base, x);
        let v = b.load(addr);
        let w = b.mul(v, x);
        b.output("o", w);
        let g = b.finish();
        let clusters = Clubbing::cluster(&g, Constraints::new(4, 2));
        for cluster in &clusters {
            assert!(cut::is_afu_legal(&g, cluster));
        }
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn candidates_only_report_profitable_clusters() {
        let g = chain();
        let model = DefaultCostModel::new();
        let algo = Clubbing::new();
        for candidate in algo.candidates(&g, Constraints::new(4, 2), &model) {
            assert!(candidate.evaluation.merit > 0.0);
        }
    }
}
