//! # ise-baselines — prior-art identification algorithms used for comparison
//!
//! The paper compares its identification/selection framework against two representative
//! state-of-the-art techniques (Section 8):
//!
//! * **Clubbing** (Baleani et al., CODES 2002) — a greedy, linear-complexity clustering
//!   that grows n-input/m-output clusters while the port constraints remain satisfied;
//! * **MaxMISO** (Alippi et al., DATE 1999) — a linear-complexity decomposition of the
//!   dataflow graph into *maximal single-output, unbounded-input* subgraphs.
//!
//! Both are reimplemented here over the same IR, cost model and constraint definitions as
//! the exact algorithms of `ise-core`, so that the Fig. 11 comparison exercises identical
//! substrates and differs only in the identification strategy. A trivial
//! [`SingleNode`] baseline is also provided as a sanity floor.
//!
//! All baselines implement [`IdentificationAlgorithm`]: they enumerate candidate cuts per
//! basic block; [`select_greedy`] then picks up to `Ninstr` non-overlapping candidates
//! across the whole application by decreasing dynamic saving, mirroring how the paper
//! turns per-block candidates into an instruction set.
//!
//! They also implement the unified [`Identifier`] trait of
//! the `ise-core` engine, so every baseline is reachable through the
//! [`IdentifierRegistry`] by name (`"clubbing"`, `"maxmiso"`, `"single-node"`) and can be
//! driven by the same `rayon`-parallel program driver as the exact algorithms:
//! [`full_registry`] returns all six bundled algorithms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clubbing;
mod maxmiso;
mod single_node;

use ise_core::cut::CutSet;
use ise_core::engine::{Identifier, IdentifierRegistry};
use ise_core::selection::SelectionResult;
use ise_core::{Constraints, IdentifiedCut, SearchOutcome, SearchStats};
use ise_hw::CostModel;
use ise_ir::{Dfg, Program};

pub use clubbing::Clubbing;
pub use maxmiso::MaxMiso;
pub use single_node::SingleNode;

/// A candidate-generation algorithm that can be plugged into the comparison harness.
///
/// `Sync` is a supertrait so that the engine bridge below can hand any baseline to the
/// thread-fanning program driver; baselines are stateless, so this costs nothing.
pub trait IdentificationAlgorithm: Sync {
    /// Short human-readable name, used in reports ("Clubbing", "MaxMISO", …).
    fn name(&self) -> &'static str;

    /// Enumerates the candidate cuts of one basic block that satisfy `constraints`.
    ///
    /// Candidates must be convex, legal (no memory operations), within the port
    /// constraints, and should have strictly positive merit; candidates from the same
    /// block are expected to be pairwise disjoint.
    fn candidates(
        &self,
        dfg: &Dfg,
        constraints: Constraints,
        model: &dyn CostModel,
    ) -> Vec<IdentifiedCut>;
}

/// Shared [`Identifier`] bridge body for the one-shot baselines: report all disjoint
/// candidates in [`SearchOutcome::candidates`], implementing exclusion by dropping the
/// candidates that touch excluded nodes.
fn baseline_outcome(
    algorithm: &dyn IdentificationAlgorithm,
    dfg: &Dfg,
    excluded: Option<&CutSet>,
    constraints: &Constraints,
    model: &dyn CostModel,
) -> SearchOutcome {
    let mut candidates = algorithm.candidates(dfg, *constraints, model);
    // The effort statistic reflects the enumeration, which is identical with or without
    // exclusions — count before dropping excluded candidates.
    let enumerated = candidates.len() as u64;
    if let Some(excluded) = excluded {
        candidates.retain(|candidate| !candidate.cut.intersects(excluded));
    }
    let stats = SearchStats {
        cuts_considered: enumerated,
        feasible_cuts: candidates.len() as u64,
        ..SearchStats::default()
    };
    SearchOutcome::from_candidates(candidates, stats)
}

/// Implements the engine [`Identifier`] trait for a baseline type. (A blanket impl over
/// `IdentificationAlgorithm` would fall foul of the orphan rule: `Identifier` lives in
/// `ise-core`.) Baselines enumerate all their candidates up front, so they are
/// non-refining and the program driver merges them with its one-shot greedy strategy.
macro_rules! impl_identifier_for_baseline {
    ($type:ty, $registry_name:literal) => {
        impl Identifier for $type {
            fn name(&self) -> &'static str {
                $registry_name
            }

            fn identify_excluding(
                &self,
                dfg: &Dfg,
                excluded: Option<&CutSet>,
                constraints: &Constraints,
                model: &dyn CostModel,
            ) -> SearchOutcome {
                baseline_outcome(self, dfg, excluded, constraints, model)
            }

            fn refines_under_exclusion(&self) -> bool {
                false
            }
        }
    };
}

impl_identifier_for_baseline!(Clubbing, "clubbing");
impl_identifier_for_baseline!(MaxMiso, "maxmiso");
impl_identifier_for_baseline!(SingleNode, "single-node");

/// Registers the three baselines in an existing registry.
pub fn register_baselines(registry: &mut IdentifierRegistry) {
    registry.register("clubbing", |_| Box::new(Clubbing::new()));
    registry.register("maxmiso", |_| Box::new(MaxMiso::new()));
    registry.register("single-node", |_| Box::new(SingleNode::new()));
}

/// Returns the registry holding all six bundled identification algorithms:
/// `"single-cut"`, `"multicut"`, `"exhaustive"`, `"clubbing"`, `"maxmiso"` and
/// `"single-node"`.
#[must_use]
pub fn full_registry() -> IdentifierRegistry {
    let mut registry = IdentifierRegistry::core_algorithms();
    register_baselines(&mut registry);
    registry
}

/// Greedy cross-block selection shared by all baselines: sort every candidate by dynamic
/// saving (merit × block execution count) and keep the best `max_instructions`
/// non-overlapping ones.
///
/// This is a thin front over the engine's one-shot driver strategy
/// ([`ise_core::engine::select_program`]), bridging any
/// [`IdentificationAlgorithm`] trait object into an [`Identifier`]; the greedy merge
/// logic lives in one place, in the engine.
#[must_use]
pub fn select_greedy(
    program: &Program,
    algorithm: &dyn IdentificationAlgorithm,
    constraints: Constraints,
    model: &dyn CostModel,
    max_instructions: usize,
) -> SelectionResult {
    struct Bridge<'a>(&'a dyn IdentificationAlgorithm);

    impl std::fmt::Debug for Bridge<'_> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("Bridge").field(&self.0.name()).finish()
        }
    }

    impl Identifier for Bridge<'_> {
        fn name(&self) -> &'static str {
            "baseline"
        }

        fn identify_excluding(
            &self,
            dfg: &Dfg,
            excluded: Option<&CutSet>,
            constraints: &Constraints,
            model: &dyn CostModel,
        ) -> SearchOutcome {
            baseline_outcome(self.0, dfg, excluded, constraints, model)
        }

        fn refines_under_exclusion(&self) -> bool {
            false
        }
    }

    ise_core::engine::select_program(
        program,
        &Bridge(algorithm),
        constraints,
        model,
        ise_core::engine::DriverOptions::new(max_instructions).sequential(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn sample_program() -> Program {
        let mut p = Program::new("sample");
        let mut b = DfgBuilder::new("bb0");
        b.exec_count(100);
        let x = b.input("x");
        let y = b.input("y");
        let m = b.mul(x, y);
        let s = b.add(m, y);
        let t = b.shl(s, b.imm(2));
        b.output("o", t);
        p.add_block(b.finish());
        let mut b = DfgBuilder::new("bb1");
        b.exec_count(10);
        let a = b.input("a");
        let c = b.input("c");
        let d = b.sub(a, c);
        let e = b.abs(d);
        b.output("o", e);
        p.add_block(b.finish());
        p
    }

    #[test]
    fn greedy_selection_respects_the_instruction_budget() {
        let p = sample_program();
        let model = DefaultCostModel::new();
        for algo in [
            &MaxMiso::new() as &dyn IdentificationAlgorithm,
            &Clubbing::new(),
            &SingleNode::new(),
        ] {
            let all = select_greedy(&p, algo, Constraints::new(4, 2), &model, 16);
            let one = select_greedy(&p, algo, Constraints::new(4, 2), &model, 1);
            assert!(one.len() <= 1, "{}", algo.name());
            assert!(all.len() >= one.len(), "{}", algo.name());
            assert!(
                all.total_weighted_saving >= one.total_weighted_saving,
                "{}",
                algo.name()
            );
        }
    }

    #[test]
    fn full_registry_resolves_all_six_algorithms() {
        let registry = full_registry();
        let names = registry.names();
        for expected in [
            "single-cut",
            "multicut",
            "exhaustive",
            "clubbing",
            "maxmiso",
            "single-node",
        ] {
            assert!(names.contains(&expected), "{expected} missing: {names:?}");
            let identifier = registry.create(expected).expect("resolvable");
            assert_eq!(identifier.name(), expected);
        }
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn engine_bridge_agrees_with_select_greedy() {
        let p = sample_program();
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(4, 2);
        let registry = full_registry();
        let algorithms: [(&str, &dyn IdentificationAlgorithm); 3] = [
            ("clubbing", &Clubbing::new()),
            ("maxmiso", &MaxMiso::new()),
            ("single-node", &SingleNode::new()),
        ];
        for (name, algorithm) in algorithms {
            let identifier = registry.create(name).expect("registered");
            assert!(!identifier.refines_under_exclusion(), "{name}");
            let engine = ise_core::engine::select_program(
                &p,
                identifier.as_ref(),
                constraints,
                &model,
                ise_core::engine::DriverOptions::new(16),
            );
            let greedy = select_greedy(&p, algorithm, constraints, &model, 16);
            assert_eq!(engine.len(), greedy.len(), "{name}");
            assert!(
                (engine.total_weighted_saving - greedy.total_weighted_saving).abs() < 1e-9,
                "{name}: engine {} vs greedy {}",
                engine.total_weighted_saving,
                greedy.total_weighted_saving
            );
        }
    }

    #[test]
    fn exclusion_through_the_engine_drops_touching_candidates() {
        let p = sample_program();
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(4, 2);
        let block = p.block(0);
        let identifier = Clubbing::new();
        let all = Identifier::identify(&identifier, block, &constraints, &model);
        let best = all.best.clone().expect("profitable cluster");
        let filtered = identifier.identify_excluding(block, Some(&best.cut), &constraints, &model);
        for candidate in &filtered.candidates {
            assert!(!candidate.cut.intersects(&best.cut));
        }
        assert!(filtered.candidates.len() < all.candidates.len().max(1));
    }

    #[test]
    fn greedy_selection_never_overlaps() {
        let p = sample_program();
        let model = DefaultCostModel::new();
        let result = select_greedy(&p, &MaxMiso::new(), Constraints::new(8, 4), &model, 16);
        for i in 0..result.chosen.len() {
            for j in i + 1..result.chosen.len() {
                if result.chosen[i].block_index == result.chosen[j].block_index {
                    assert!(!result.chosen[i]
                        .identified
                        .cut
                        .intersects(&result.chosen[j].identified.cut));
                }
            }
        }
    }
}
