//! # ise-baselines — prior-art identification algorithms used for comparison
//!
//! The paper compares its identification/selection framework against two representative
//! state-of-the-art techniques (Section 8):
//!
//! * **Clubbing** (Baleani et al., CODES 2002) — a greedy, linear-complexity clustering
//!   that grows n-input/m-output clusters while the port constraints remain satisfied;
//! * **MaxMISO** (Alippi et al., DATE 1999) — a linear-complexity decomposition of the
//!   dataflow graph into *maximal single-output, unbounded-input* subgraphs.
//!
//! Both are reimplemented here over the same IR, cost model and constraint definitions as
//! the exact algorithms of `ise-core`, so that the Fig. 11 comparison exercises identical
//! substrates and differs only in the identification strategy. A trivial
//! [`SingleNode`] baseline is also provided as a sanity floor.
//!
//! All baselines implement [`IdentificationAlgorithm`]: they enumerate candidate cuts per
//! basic block; [`select_greedy`] then picks up to `Ninstr` non-overlapping candidates
//! across the whole application by decreasing dynamic saving, mirroring how the paper
//! turns per-block candidates into an instruction set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clubbing;
mod maxmiso;
mod single_node;

use ise_core::selection::{ChosenCut, SelectionResult};
use ise_core::{Constraints, IdentifiedCut};
use ise_hw::CostModel;
use ise_ir::{Dfg, Program};

pub use clubbing::Clubbing;
pub use maxmiso::MaxMiso;
pub use single_node::SingleNode;

/// A candidate-generation algorithm that can be plugged into the comparison harness.
pub trait IdentificationAlgorithm {
    /// Short human-readable name, used in reports ("Clubbing", "MaxMISO", …).
    fn name(&self) -> &'static str;

    /// Enumerates the candidate cuts of one basic block that satisfy `constraints`.
    ///
    /// Candidates must be convex, legal (no memory operations), within the port
    /// constraints, and should have strictly positive merit; candidates from the same
    /// block are expected to be pairwise disjoint.
    fn candidates(
        &self,
        dfg: &Dfg,
        constraints: Constraints,
        model: &dyn CostModel,
    ) -> Vec<IdentifiedCut>;
}

/// Greedy cross-block selection shared by all baselines: sort every candidate by dynamic
/// saving (merit × block execution count) and keep the best `max_instructions`
/// non-overlapping ones.
#[must_use]
pub fn select_greedy(
    program: &Program,
    algorithm: &dyn IdentificationAlgorithm,
    constraints: Constraints,
    model: &dyn CostModel,
    max_instructions: usize,
) -> SelectionResult {
    let mut pool: Vec<(usize, IdentifiedCut, f64)> = Vec::new();
    let mut identifier_calls = 0;
    for (block_index, dfg) in program.blocks().iter().enumerate() {
        identifier_calls += 1;
        for candidate in algorithm.candidates(dfg, constraints, model) {
            let weighted = candidate.evaluation.merit * dfg.exec_count() as f64;
            if weighted > 0.0 {
                pool.push((block_index, candidate, weighted));
            }
        }
    }
    pool.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));

    let mut chosen: Vec<ChosenCut> = Vec::new();
    let mut total = 0.0;
    for (block_index, candidate, weighted) in pool {
        if chosen.len() >= max_instructions {
            break;
        }
        let overlaps = chosen.iter().any(|c| {
            c.block_index == block_index && c.identified.cut.intersects(&candidate.cut)
        });
        if overlaps {
            continue;
        }
        total += weighted;
        chosen.push(ChosenCut {
            block_index,
            identified: candidate,
        });
    }
    SelectionResult {
        chosen,
        total_weighted_saving: total,
        identifier_calls,
        cuts_considered: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn sample_program() -> Program {
        let mut p = Program::new("sample");
        let mut b = DfgBuilder::new("bb0");
        b.exec_count(100);
        let x = b.input("x");
        let y = b.input("y");
        let m = b.mul(x, y);
        let s = b.add(m, y);
        let t = b.shl(s, b.imm(2));
        b.output("o", t);
        p.add_block(b.finish());
        let mut b = DfgBuilder::new("bb1");
        b.exec_count(10);
        let a = b.input("a");
        let c = b.input("c");
        let d = b.sub(a, c);
        let e = b.abs(d);
        b.output("o", e);
        p.add_block(b.finish());
        p
    }

    #[test]
    fn greedy_selection_respects_the_instruction_budget() {
        let p = sample_program();
        let model = DefaultCostModel::new();
        for algo in [
            &MaxMiso::new() as &dyn IdentificationAlgorithm,
            &Clubbing::new(),
            &SingleNode::new(),
        ] {
            let all = select_greedy(&p, algo, Constraints::new(4, 2), &model, 16);
            let one = select_greedy(&p, algo, Constraints::new(4, 2), &model, 1);
            assert!(one.len() <= 1, "{}", algo.name());
            assert!(all.len() >= one.len(), "{}", algo.name());
            assert!(
                all.total_weighted_saving >= one.total_weighted_saving,
                "{}",
                algo.name()
            );
        }
    }

    #[test]
    fn greedy_selection_never_overlaps() {
        let p = sample_program();
        let model = DefaultCostModel::new();
        let result = select_greedy(&p, &MaxMiso::new(), Constraints::new(8, 4), &model, 16);
        for i in 0..result.chosen.len() {
            for j in i + 1..result.chosen.len() {
                if result.chosen[i].block_index == result.chosen[j].block_index {
                    assert!(!result.chosen[i]
                        .identified
                        .cut
                        .intersects(&result.chosen[j].identified.cut));
                }
            }
        }
    }
}
