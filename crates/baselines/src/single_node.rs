//! A trivial per-node baseline, used as a sanity floor in the comparisons.

use ise_core::cut::{self, CutSet};
use ise_core::{Constraints, IdentifiedCut};
use ise_hw::CostModel;
use ise_ir::Dfg;

use crate::IdentificationAlgorithm;

/// Proposes every individual operation as its own candidate instruction.
///
/// With a realistic cost model a single primitive operation almost never saves cycles
/// (it already executes in one cycle), so this baseline typically selects nothing; it
/// exists to anchor the comparison plots and to catch cost-model regressions where a
/// lone operation suddenly appears profitable.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleNode;

impl SingleNode {
    /// Creates the algorithm.
    #[must_use]
    pub fn new() -> Self {
        SingleNode
    }
}

impl IdentificationAlgorithm for SingleNode {
    fn name(&self) -> &'static str {
        "SingleNode"
    }

    fn candidates(
        &self,
        dfg: &Dfg,
        constraints: Constraints,
        model: &dyn CostModel,
    ) -> Vec<IdentifiedCut> {
        dfg.node_ids()
            .filter(|&id| !dfg.node(id).is_forbidden_in_afu())
            .map(|id| {
                let set = CutSet::from_nodes(dfg, [id]);
                let evaluation = cut::evaluate(dfg, &set, model);
                IdentifiedCut {
                    cut: set,
                    evaluation,
                }
            })
            .filter(|candidate| {
                candidate.evaluation.merit > 0.0
                    && constraints
                        .ports_ok(candidate.evaluation.inputs, candidate.evaluation.outputs)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    #[test]
    fn only_multi_cycle_operations_are_ever_profitable() {
        let mut b = DfgBuilder::new("mix");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.add(x, y);
        let m = b.mul(a, y);
        let s = b.xor(m, x);
        b.output("o", s);
        let g = b.finish();
        let model = DefaultCostModel::new();
        let algo = SingleNode::new();
        let candidates = algo.candidates(&g, Constraints::new(2, 1), &model);
        // Only the 2-cycle multiply gains anything when turned into a 1-cycle instruction.
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].evaluation.nodes, 1);
        assert!(candidates[0]
            .cut
            .contains(m.as_node().expect("mul is a node")));
    }

    #[test]
    fn memory_operations_are_never_proposed() {
        let mut b = DfgBuilder::new("mem");
        let base = b.input("base");
        let v = b.load(base);
        let w = b.div(v, b.imm(3));
        b.output("o", w);
        let g = b.finish();
        let model = DefaultCostModel::new();
        let algo = SingleNode::new();
        for candidate in algo.candidates(&g, Constraints::new(2, 1), &model) {
            assert!(cut::is_afu_legal(&g, &candidate.cut));
        }
    }
}
