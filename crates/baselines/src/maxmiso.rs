//! The MaxMISO baseline (Alippi et al., DATE 1999).

use ise_core::cut::{self, CutSet};
use ise_core::{Constraints, IdentifiedCut};
use ise_hw::CostModel;
use ise_ir::{Dfg, NodeId};

use crate::IdentificationAlgorithm;

/// Maximal single-output, unbounded-input subgraph identification.
///
/// The dataflow graph is partitioned into *MaxMISOs*: every node is absorbed into the
/// subgraph of its consumer when it has exactly one use and that use is a legal
/// operation; nodes with multiple uses, with a live-out value, or whose only consumer is
/// a memory operation become the single output of their own MaxMISO. The decomposition is
/// linear in the size of the graph and unique.
///
/// Two properties noted in the paper follow directly from the construction and are
/// verified by the tests:
///
/// * every MaxMISO has exactly one output, so the algorithm can never exploit more than
///   one register-file write port;
/// * the number of inputs is unbounded, so under a tight read-port constraint a MaxMISO
///   is often rejected wholesale, even when a profitable *sub*graph of it would fit (the
///   `M1 ⊂ M2` situation of Fig. 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxMiso;

impl MaxMiso {
    /// Creates the algorithm.
    #[must_use]
    pub fn new() -> Self {
        MaxMiso
    }

    /// Partitions `dfg` into MaxMISOs, returning each subgraph as a cut. Memory
    /// operations and other AFU-illegal nodes are left out of every subgraph.
    #[must_use]
    pub fn partition(dfg: &Dfg) -> Vec<CutSet> {
        let n = dfg.node_count();
        let mut root: Vec<Option<usize>> = vec![None; n];
        // Process consumers before producers: nodes are stored def-before-use, so a
        // reverse scan visits every consumer before the nodes it consumes.
        for index in (0..n).rev() {
            let id = NodeId::new(index);
            let node = dfg.node(id);
            if node.is_forbidden_in_afu() {
                continue;
            }
            let consumers = dfg.consumers(id);
            let single_absorbing_consumer = if !dfg.is_output_source(id) && consumers.len() == 1 {
                let consumer = consumers[0];
                root[consumer.index()].map(|_| consumer)
            } else {
                None
            };
            root[index] = match single_absorbing_consumer {
                Some(consumer) => root[consumer.index()],
                None => Some(index),
            };
        }
        let mut groups: Vec<(usize, CutSet)> = Vec::new();
        for (index, slot) in root.iter().enumerate() {
            let Some(group_root) = *slot else {
                continue;
            };
            match groups.iter_mut().find(|(r, _)| *r == group_root) {
                Some((_, cut)) => {
                    cut.insert(NodeId::new(index));
                }
                None => {
                    let mut cut = CutSet::for_dfg(dfg);
                    cut.insert(NodeId::new(index));
                    groups.push((group_root, cut));
                }
            }
        }
        groups.into_iter().map(|(_, cut)| cut).collect()
    }
}

impl IdentificationAlgorithm for MaxMiso {
    fn name(&self) -> &'static str {
        "MaxMISO"
    }

    fn candidates(
        &self,
        dfg: &Dfg,
        constraints: Constraints,
        model: &dyn CostModel,
    ) -> Vec<IdentifiedCut> {
        Self::partition(dfg)
            .into_iter()
            .map(|set| {
                let evaluation = cut::evaluate(dfg, &set, model);
                IdentifiedCut {
                    cut: set,
                    evaluation,
                }
            })
            .filter(|candidate| {
                candidate.evaluation.merit > 0.0
                    && candidate.evaluation.convex
                    && constraints
                        .ports_ok(candidate.evaluation.inputs, candidate.evaluation.outputs)
                    && constraints.budget_ok(candidate.evaluation.area, candidate.evaluation.nodes)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    /// x*y feeds both an add and a sub (two uses), so the multiply is its own MaxMISO;
    /// each of the two dependent chains forms another MaxMISO.
    fn shared_product() -> Dfg {
        let mut b = DfgBuilder::new("shared");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let m = b.mul(x, y);
        let a = b.add(m, z);
        let s = b.sub(m, z);
        let a2 = b.shl(a, b.imm(1));
        b.output("o1", a2);
        b.output("o2", s);
        b.finish()
    }

    #[test]
    fn partition_covers_all_legal_nodes_exactly_once() {
        let g = shared_product();
        let groups = MaxMiso::partition(&g);
        let mut seen = vec![false; g.node_count()];
        for group in &groups {
            for id in group.iter() {
                assert!(!seen[id.index()], "node {id} assigned twice");
                seen[id.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every legal node must be covered");
    }

    #[test]
    fn every_miso_has_a_single_output_and_is_convex() {
        let g = shared_product();
        for group in MaxMiso::partition(&g) {
            assert_eq!(cut::output_count(&g, &group), 1);
            assert!(cut::is_convex(&g, &group));
        }
    }

    #[test]
    fn shared_values_split_the_partition() {
        let g = shared_product();
        let groups = MaxMiso::partition(&g);
        // mul (2 uses) alone; {add, shl}; {sub}.
        assert_eq!(groups.len(), 3);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = groups.iter().map(CutSet::len).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 1, 2]);
    }

    #[test]
    fn memory_nodes_are_excluded_and_split_chains() {
        let mut b = DfgBuilder::new("mem");
        let base = b.input("base");
        let x = b.input("x");
        let addr = b.add(base, x);
        let v = b.load(addr);
        let w = b.mul(v, x);
        let u = b.add(w, b.imm(3));
        b.output("o", u);
        let g = b.finish();
        let groups = MaxMiso::partition(&g);
        for group in &groups {
            assert!(cut::is_afu_legal(&g, group));
        }
        // The load both terminates the address MaxMISO and starts a fresh one above it.
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn unbounded_inputs_are_rejected_under_tight_read_port_constraints() {
        // A 5-input reduction tree: a single MaxMISO with 5 inputs.
        let mut b = DfgBuilder::new("tree");
        let inputs: Vec<_> = (0..5).map(|i| b.input(format!("x{i}"))).collect();
        let s1 = b.add(inputs[0], inputs[1]);
        let s2 = b.add(inputs[2], inputs[3]);
        let s3 = b.add(s1, s2);
        let s4 = b.mul(s3, inputs[4]);
        b.output("o", s4);
        let g = b.finish();
        let model = DefaultCostModel::new();
        let algo = MaxMiso::new();
        assert_eq!(MaxMiso::partition(&g).len(), 1);
        // With 2 read ports the single MaxMISO does not fit and nothing is proposed,
        // even though a profitable 2-input subgraph exists (found by the exact search).
        assert!(algo
            .candidates(&g, Constraints::new(2, 1), &model)
            .is_empty());
        assert_eq!(algo.candidates(&g, Constraints::new(8, 1), &model).len(), 1);
        let exact = ise_core::identify_single_cut(&g, Constraints::new(2, 1), &model);
        assert!(exact.best.is_some());
    }
}
