//! Hardware (combinational datapath) delay table.

use ise_ir::{Dfg, NodeId, Opcode};

/// Per-operation combinational delay, normalised to the delay of a 32-bit
/// multiply-accumulate.
///
/// The paper evaluates operator latencies "by synthesizing arithmetic and logic operators
/// on a common 0.18 µm CMOS process" and normalises "to the delay of a 32-bit
/// multiply-accumulate" (Section 7). The relative values below follow the standard
/// ordering of synthesised operators: wiring/bit-select ≪ logic ≪ selector ≪ comparator ≈
/// adder < barrel shifter < multiplier ≤ MAC; the iterative divider is far slower than a
/// MAC and is essentially never profitable inside an AFU.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HardwareDelayModel {
    wiring: f64,
    logic: f64,
    select: f64,
    compare_eq: f64,
    compare_rel: f64,
    add: f64,
    minmax: f64,
    shift: f64,
    multiply: f64,
    mac: f64,
    divide: f64,
    memory: f64,
}

impl Default for HardwareDelayModel {
    fn default() -> Self {
        HardwareDelayModel {
            wiring: 0.02,
            logic: 0.05,
            select: 0.10,
            compare_eq: 0.18,
            compare_rel: 0.28,
            add: 0.30,
            minmax: 0.35,
            shift: 0.22,
            multiply: 0.87,
            mac: 1.00,
            divide: 6.00,
            memory: 2.00,
        }
    }
}

impl HardwareDelayModel {
    /// Creates the default 0.18 µm-style normalised delay model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalised combinational delay of `opcode`, as a fraction of a 32-bit MAC delay.
    #[must_use]
    pub fn delay(&self, opcode: Opcode) -> f64 {
        use Opcode::*;
        match opcode {
            And | Or | Xor | Not => self.logic,
            SextB | SextH | ZextB | ZextH | TruncB | TruncH | Copy | Const => self.wiring,
            Select => self.select,
            Eq | Ne => self.compare_eq,
            Lt | Le | Gt | Ge | Ltu | Geu => self.compare_rel,
            Add | Sub | Neg | Abs => self.add,
            Min | Max => self.minmax,
            Shl | Lshr | Ashr => self.shift,
            Mul | MulHi => self.multiply,
            Mac => self.mac,
            Div | Rem => self.divide,
            Load | Store => self.memory,
            Afu { .. } => self.mac,
            // Opaque nodes never enter a cut, so this figure never lands on an AFU
            // critical path; charge the memory-access delay for completeness.
            Opaque(_) => self.memory,
        }
    }

    /// Critical-path delay (in normalised MAC delays) of the subgraph induced by the
    /// nodes for which `in_subgraph` returns `true`.
    ///
    /// The path length of a node only accumulates delays of predecessors that are also in
    /// the subgraph; values entering the subgraph are considered available at time zero,
    /// exactly as the paper assumes all AFU operands are read from the register file at
    /// issue time.
    #[must_use]
    pub fn critical_path_of(&self, dfg: &Dfg, in_subgraph: impl Fn(NodeId) -> bool) -> f64 {
        let mut finish = vec![0.0f64; dfg.node_count()];
        let mut max_finish = 0.0f64;
        for (id, node) in dfg.iter_nodes() {
            if !in_subgraph(id) {
                continue;
            }
            let ready = node
                .node_operands()
                .filter(|p| in_subgraph(*p))
                .map(|p| finish[p.index()])
                .fold(0.0f64, f64::max);
            let done = ready + self.delay(node.opcode);
            finish[id.index()] = done;
            max_finish = max_finish.max(done);
        }
        max_finish
    }

    /// Critical-path delay of the whole basic block.
    #[must_use]
    pub fn critical_path(&self, dfg: &Dfg) -> f64 {
        self.critical_path_of(dfg, |_| true)
    }

    /// Number of processor cycles needed by a single instruction implementing a datapath
    /// with the given critical-path delay: the ceiling of the delay, with a minimum of
    /// one cycle for any non-empty datapath.
    #[must_use]
    pub fn cycles_for_delay(delay: f64) -> u32 {
        if delay <= 0.0 {
            0
        } else {
            delay.ceil() as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::DfgBuilder;

    #[test]
    fn delay_ordering_matches_synthesis_intuition() {
        let m = HardwareDelayModel::new();
        assert!(m.delay(Opcode::And) < m.delay(Opcode::Add));
        assert!(m.delay(Opcode::Add) < m.delay(Opcode::Mul));
        assert!(m.delay(Opcode::Mul) < m.delay(Opcode::Mac));
        assert!((m.delay(Opcode::Mac) - 1.0).abs() < 1e-12);
        assert!(m.delay(Opcode::Div) > 1.0);
    }

    #[test]
    fn critical_path_follows_the_longest_chain() {
        // Two parallel chains: add->add->add vs mul; the three adds (0.9) dominate the mul (0.87).
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let a1 = b.add(x, y);
        let a2 = b.add(a1, y);
        let a3 = b.add(a2, y);
        let m1 = b.mul(x, y);
        b.output("a", a3);
        b.output("m", m1);
        let g = b.finish();
        let m = HardwareDelayModel::new();
        let cp = m.critical_path(&g);
        assert!((cp - 0.90).abs() < 1e-9, "critical path was {cp}");
    }

    #[test]
    fn critical_path_of_subgraph_ignores_external_nodes() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let p = b.mul(x, x);
        let q = b.add(p, x);
        let r = b.add(q, x);
        b.output("r", r);
        let g = b.finish();
        let m = HardwareDelayModel::new();
        // Only the two adds are in the subgraph: the multiplier's delay must not count.
        let cp = m.critical_path_of(&g, |id| id.index() >= 1);
        assert!((cp - 0.60).abs() < 1e-9, "critical path was {cp}");
    }

    #[test]
    fn cycles_for_delay_uses_ceiling() {
        assert_eq!(HardwareDelayModel::cycles_for_delay(0.0), 0);
        assert_eq!(HardwareDelayModel::cycles_for_delay(0.3), 1);
        assert_eq!(HardwareDelayModel::cycles_for_delay(1.0), 1);
        assert_eq!(HardwareDelayModel::cycles_for_delay(1.01), 2);
        assert_eq!(HardwareDelayModel::cycles_for_delay(3.7), 4);
    }

    #[test]
    fn empty_graph_has_zero_critical_path() {
        let g = ise_ir::Dfg::new("empty");
        assert_eq!(HardwareDelayModel::new().critical_path(&g), 0.0);
    }
}
