//! The cost-model abstraction consumed by the identification algorithms.

use ise_ir::Node;

use crate::area::AreaModel;
use crate::delay::HardwareDelayModel;
use crate::latency::SoftwareLatencyModel;

/// Per-node costs needed by the merit function of the identification algorithm.
///
/// The search algorithm of the paper evaluates `M(S)` in its innermost loop, so the model
/// must be cheap: it only exposes per-node quantities and lets the search maintain the
/// software sum and hardware critical path incrementally. The model is deliberately kept
/// as a trait so that alternative estimation models (for example the VLIW-oriented model
/// mentioned as future work in Section 9) can be plugged in without touching the search.
///
/// `Sync` is a supertrait so that one `&dyn CostModel` can be shared by the parallel
/// identification driver, which fans the per-block searches out across threads; cost
/// models are plain lookup tables, so this costs implementors nothing.
pub trait CostModel: Sync {
    /// Latency, in cycles, of executing `node` as a regular instruction of the base
    /// processor.
    fn software_cycles(&self, node: &Node) -> u32;

    /// Normalised combinational delay of `node` when implemented inside an AFU
    /// (1.0 = one 32-bit MAC delay = one processor cycle).
    fn hardware_delay(&self, node: &Node) -> f64;

    /// Normalised silicon area of `node` when implemented inside an AFU.
    fn hardware_area(&self, node: &Node) -> f64;

    /// Number of cycles taken by a special instruction whose datapath has the given
    /// critical-path delay.
    fn cycles_for_delay(&self, delay: f64) -> u32 {
        HardwareDelayModel::cycles_for_delay(delay)
    }
}

/// Merit `M(S)` of a cut given its accumulated software cycles and its hardware
/// critical-path delay: the estimated cycle saving per execution (Section 7 of the
/// paper). Negative savings are possible (e.g. a single logic operation still costs one
/// cycle as an instruction) and are reported as such; the search simply never selects
/// them as best.
#[must_use]
pub fn cut_merit(software_cycles: u64, hardware_critical_path: f64) -> f64 {
    software_cycles as f64 - f64::from(HardwareDelayModel::cycles_for_delay(hardware_critical_path))
}

/// The default cost model: single-issue software latencies, 0.18 µm-style normalised
/// hardware delays and areas.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DefaultCostModel {
    /// Software latency table.
    pub software: SoftwareLatencyModel,
    /// Hardware delay table.
    pub delay: HardwareDelayModel,
    /// Hardware area table.
    pub area: AreaModel,
}

impl DefaultCostModel {
    /// Creates the default cost model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cost model with unit software latencies, used by analytical tests.
    #[must_use]
    pub fn unit_software() -> Self {
        DefaultCostModel {
            software: SoftwareLatencyModel::unit(),
            delay: HardwareDelayModel::new(),
            area: AreaModel::new(),
        }
    }
}

impl CostModel for DefaultCostModel {
    fn software_cycles(&self, node: &Node) -> u32 {
        self.software.cycles(node.opcode)
    }

    fn hardware_delay(&self, node: &Node) -> f64 {
        self.delay.delay(node.opcode)
    }

    fn hardware_area(&self, node: &Node) -> f64 {
        self.area.area(node.opcode)
    }
}

/// A cost model for a VLIW base processor that can issue `issue_width` operations per
/// cycle.
///
/// The paper notes (Section 9) that its simple accumulation model over-estimates software
/// cost on VLIW machines; this model divides the software cost of a cut by the issue
/// width (optimistically assuming perfect static scheduling), which shrinks the apparent
/// merit of candidate instructions and is used by the ablation benchmarks.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VliwCostModel {
    base: DefaultCostModel,
    issue_width: u32,
}

impl VliwCostModel {
    /// Creates a VLIW cost model with the given issue width.
    ///
    /// # Panics
    ///
    /// Panics if `issue_width` is zero.
    #[must_use]
    pub fn new(issue_width: u32) -> Self {
        assert!(issue_width > 0, "issue width must be at least one");
        VliwCostModel {
            base: DefaultCostModel::new(),
            issue_width,
        }
    }

    /// The modelled issue width.
    #[must_use]
    pub fn issue_width(&self) -> u32 {
        self.issue_width
    }
}

impl CostModel for VliwCostModel {
    fn software_cycles(&self, node: &Node) -> u32 {
        // Scale per-node cost down by the issue width, keeping a one-cycle floor; the
        // merit function works on integer-valued software sums, so the rounding is done
        // per node (an optimistic model, as discussed in DESIGN.md).
        self.base.software_cycles(node).div_ceil(self.issue_width)
    }

    fn hardware_delay(&self, node: &Node) -> f64 {
        self.base.hardware_delay(node)
    }

    fn hardware_area(&self, node: &Node) -> f64 {
        self.base.hardware_area(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::{Node, Opcode, Operand};

    fn node(op: Opcode) -> Node {
        let arity = op.arity().unwrap_or(0);
        Node::new(op, vec![Operand::Imm(0); arity])
    }

    #[test]
    fn default_model_is_consistent_with_its_tables() {
        let m = DefaultCostModel::new();
        let add = node(Opcode::Add);
        assert_eq!(m.software_cycles(&add), 1);
        assert!((m.hardware_delay(&add) - 0.30).abs() < 1e-12);
        assert!((m.hardware_area(&add) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn merit_is_sw_minus_ceiled_hw() {
        assert_eq!(cut_merit(5, 0.9), 4.0);
        assert_eq!(cut_merit(5, 1.2), 3.0);
        assert_eq!(cut_merit(1, 0.05), 0.0);
        assert_eq!(cut_merit(0, 0.0), 0.0);
        assert!(cut_merit(1, 6.0) < 0.0);
    }

    #[test]
    fn vliw_model_reduces_software_cost() {
        let scalar = DefaultCostModel::new();
        let vliw = VliwCostModel::new(4);
        let mul = node(Opcode::Mul);
        assert!(vliw.software_cycles(&mul) <= scalar.software_cycles(&mul));
        assert_eq!(vliw.software_cycles(&node(Opcode::Add)), 1);
        assert_eq!(vliw.issue_width(), 4);
        assert_eq!(vliw.hardware_delay(&mul), scalar.hardware_delay(&mul));
    }

    #[test]
    #[should_panic(expected = "issue width")]
    fn zero_issue_width_is_rejected() {
        let _ = VliwCostModel::new(0);
    }
}
