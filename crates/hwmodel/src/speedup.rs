//! Application-level speed-up accounting.
//!
//! The paper reports, for each benchmark and each microarchitectural constraint, the
//! estimated whole-application speed-up achieved by the selected special instructions
//! (Fig. 11). The speed-up is computed from the baseline dynamic cycle count of the
//! profiled basic blocks and the per-execution cycle savings of each selected cut,
//! weighted by its block's execution count.

use ise_ir::Program;

use crate::latency::SoftwareLatencyModel;

/// One selected special instruction, as seen by the speed-up accounting.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SelectedInstruction {
    /// Index of the basic block the cut was extracted from.
    pub block_index: usize,
    /// Estimated cycles saved per execution of the block.
    pub saving_per_execution: f64,
    /// Execution count of the block.
    pub exec_count: u64,
    /// Normalised area of the cut's datapath.
    pub area: f64,
    /// Number of register-file read ports used.
    pub inputs: usize,
    /// Number of register-file write ports used.
    pub outputs: usize,
    /// Number of operation nodes in the cut.
    pub nodes: usize,
}

impl SelectedInstruction {
    /// Total dynamic cycles saved by this instruction.
    #[must_use]
    pub fn total_saving(&self) -> f64 {
        self.saving_per_execution * self.exec_count as f64
    }
}

/// Speed-up report for one application under one configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpeedupReport {
    /// Baseline dynamic cycle count (no special instructions).
    pub baseline_cycles: f64,
    /// Dynamic cycles after adding the selected instructions.
    pub extended_cycles: f64,
    /// Total dynamic cycles saved.
    pub saved_cycles: f64,
    /// Estimated speed-up `baseline / extended`.
    pub speedup: f64,
    /// Total normalised area of all selected datapaths.
    pub total_area: f64,
    /// The selected instructions.
    pub instructions: Vec<SelectedInstruction>,
}

/// The speed-up implied by saving `saved_cycles` out of `baseline_cycles`, with the
/// report's clamping rules: savings never exceed the baseline (at least one residual
/// cycle remains, so the ratio stays finite) and a non-positive baseline reports 1.0.
#[must_use]
pub fn clamped_speedup(baseline_cycles: f64, saved_cycles: f64) -> f64 {
    let saved = saved_cycles.min((baseline_cycles - 1.0).max(0.0));
    let extended = (baseline_cycles - saved).max(1.0);
    if baseline_cycles <= 0.0 {
        1.0
    } else {
        baseline_cycles / extended
    }
}

impl SpeedupReport {
    /// Builds a report from a baseline cycle count and a set of selected instructions.
    ///
    /// Savings are clamped so that the extended execution never drops below zero cycles
    /// (which could only happen with an inconsistent cost model).
    #[must_use]
    pub fn from_selection(baseline_cycles: f64, instructions: Vec<SelectedInstruction>) -> Self {
        let saved: f64 = instructions
            .iter()
            .map(SelectedInstruction::total_saving)
            .sum();
        // A selection can never remove more cycles than the baseline executes; keep at
        // least one residual cycle so that the reported speed-up stays finite.
        let saved = saved.min((baseline_cycles - 1.0).max(0.0));
        let extended = (baseline_cycles - saved).max(1.0);
        let speedup = clamped_speedup(baseline_cycles, saved);
        SpeedupReport {
            baseline_cycles,
            extended_cycles: extended,
            saved_cycles: saved,
            speedup,
            total_area: instructions.iter().map(|i| i.area).sum(),
            instructions,
        }
    }

    /// Builds a report for `program` given its selected instructions, computing the
    /// baseline with the supplied software latency model.
    #[must_use]
    pub fn for_program(
        program: &Program,
        software: &SoftwareLatencyModel,
        instructions: Vec<SelectedInstruction>,
    ) -> Self {
        let baseline = software.program_dynamic_cycles(program) as f64;
        Self::from_selection(baseline, instructions)
    }

    /// Percentage improvement over the baseline, `(speedup - 1) * 100`.
    #[must_use]
    pub fn improvement_percent(&self) -> f64 {
        (self.speedup - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instruction(saving: f64, count: u64, area: f64) -> SelectedInstruction {
        SelectedInstruction {
            block_index: 0,
            saving_per_execution: saving,
            exec_count: count,
            area,
            inputs: 2,
            outputs: 1,
            nodes: 3,
        }
    }

    #[test]
    fn speedup_is_ratio_of_baseline_to_extended() {
        let report = SpeedupReport::from_selection(1000.0, vec![instruction(5.0, 40, 0.5)]);
        assert_eq!(report.saved_cycles, 200.0);
        assert_eq!(report.extended_cycles, 800.0);
        assert!((report.speedup - 1.25).abs() < 1e-12);
        assert!((report.improvement_percent() - 25.0).abs() < 1e-9);
        assert_eq!(report.total_area, 0.5);
    }

    #[test]
    fn savings_are_clamped_to_the_baseline() {
        let report = SpeedupReport::from_selection(100.0, vec![instruction(1000.0, 10, 1.0)]);
        assert_eq!(report.saved_cycles, 99.0);
        assert_eq!(report.extended_cycles, 1.0);
        assert!(report.speedup.is_finite());
        assert!((report.speedup - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_selection_gives_unit_speedup() {
        let report = SpeedupReport::from_selection(500.0, vec![]);
        assert_eq!(report.speedup, 1.0);
        assert_eq!(report.saved_cycles, 0.0);
        assert_eq!(report.improvement_percent(), 0.0);
    }

    #[test]
    fn zero_baseline_is_handled() {
        let report = SpeedupReport::from_selection(0.0, vec![]);
        assert_eq!(report.speedup, 1.0);
    }
}
