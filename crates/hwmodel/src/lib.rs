//! # ise-hw — latency, delay and area models for ISE identification
//!
//! The identification algorithm of Atasu, Pozzi and Ienne (2003) scores each candidate
//! cut `S` with a merit function `M(S)` that estimates the speed-up obtained by executing
//! the cut as a single instruction of a specialised datapath (Section 7 of the paper):
//!
//! * in **software**, the cut costs the *sum* of the per-operation latencies in the
//!   execution stage of a single-issue processor;
//! * in **hardware**, the cut costs the *ceiling* of the sum of normalised combinational
//!   delays along the critical path of the subgraph (delays are normalised to the delay
//!   of a 32-bit multiply-accumulate synthesised on a 0.18 µm CMOS process).
//!
//! The difference between the two is the estimated cycle saving per execution. This crate
//! provides those two tables ([`SoftwareLatencyModel`], [`HardwareDelayModel`]), an area
//! table used for the paper's closing observation about AFU cost ([`AreaModel`]), the
//! [`CostModel`] trait consumed by the search algorithms, and application-level speed-up
//! accounting ([`speedup`]).
//!
//! # Example
//!
//! ```
//! use ise_hw::{CostModel, DefaultCostModel, cut_merit};
//! use ise_ir::{DfgBuilder, NodeId};
//!
//! let model = DefaultCostModel::new();
//! let mut b = DfgBuilder::new("mac16");
//! let x = b.input("x");
//! let y = b.input("y");
//! let acc = b.input("acc");
//! let prod = b.mul(x, y);
//! let sum = b.add(prod, acc);
//! b.output("acc", sum);
//! let g = b.finish();
//!
//! // Software: mul + add executed sequentially; hardware: one multiply-accumulate level.
//! let sw: u32 = g.iter_nodes().map(|(_, n)| model.software_cycles(n)).sum();
//! let hw = model.hardware_delay(g.node(NodeId::new(0)))
//!     + model.hardware_delay(g.node(NodeId::new(1)));
//! assert!(cut_merit(sw.into(), hw) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod cost;
mod delay;
mod latency;
pub mod speedup;

pub use area::AreaModel;
pub use cost::{cut_merit, CostModel, DefaultCostModel, VliwCostModel};
pub use delay::HardwareDelayModel;
pub use latency::SoftwareLatencyModel;
