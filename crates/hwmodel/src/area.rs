//! Hardware area table.

use ise_ir::{Dfg, NodeId, Opcode};

/// Per-operation silicon area, normalised to the area of a 32-bit multiply-accumulate.
///
/// The paper closes its result section by noting that "the area investment needed to
/// implement the special datapaths … was within the area of a couple of
/// multiply-accumulators" (Section 8). This model lets the experiment harness report the
/// same metric for the cuts selected by each algorithm, and powers the area-constrained
/// selection extension.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AreaModel {
    wiring: f64,
    logic: f64,
    select: f64,
    compare: f64,
    add: f64,
    minmax: f64,
    shift: f64,
    multiply: f64,
    mac: f64,
    divide: f64,
    memory: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            wiring: 0.001,
            logic: 0.010,
            select: 0.015,
            compare: 0.025,
            add: 0.040,
            minmax: 0.055,
            shift: 0.080,
            multiply: 0.800,
            mac: 1.000,
            divide: 1.400,
            memory: 0.500,
        }
    }
}

impl AreaModel {
    /// Creates the default normalised area model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalised area of one instance of `opcode`.
    #[must_use]
    pub fn area(&self, opcode: Opcode) -> f64 {
        use Opcode::*;
        match opcode {
            And | Or | Xor | Not => self.logic,
            SextB | SextH | ZextB | ZextH | TruncB | TruncH | Copy | Const => self.wiring,
            Select => self.select,
            Eq | Ne | Lt | Le | Gt | Ge | Ltu | Geu => self.compare,
            Add | Sub | Neg | Abs => self.add,
            Min | Max => self.minmax,
            Shl | Lshr | Ashr => self.shift,
            Mul | MulHi => self.multiply,
            Mac => self.mac,
            Div | Rem => self.divide,
            Load | Store => self.memory,
            Afu { .. } => self.mac,
            // Opaque nodes never enter a cut, so this figure is never summed into an
            // AFU's area; charge the memory-port figure for completeness.
            Opaque(_) => self.memory,
        }
    }

    /// Total area of the subgraph induced by the nodes for which `in_subgraph` is true.
    #[must_use]
    pub fn area_of(&self, dfg: &Dfg, in_subgraph: impl Fn(NodeId) -> bool) -> f64 {
        dfg.iter_nodes()
            .filter(|(id, _)| in_subgraph(*id))
            .map(|(_, n)| self.area(n.opcode))
            .sum()
    }

    /// Total area of the whole basic block implemented as combinational hardware.
    #[must_use]
    pub fn block_area(&self, dfg: &Dfg) -> f64 {
        self.area_of(dfg, |_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::DfgBuilder;

    #[test]
    fn area_ordering() {
        let m = AreaModel::new();
        assert!(m.area(Opcode::And) < m.area(Opcode::Add));
        assert!(m.area(Opcode::Add) < m.area(Opcode::Mul));
        assert!((m.area(Opcode::Mac) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subgraph_area_sums_member_nodes() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let p = b.mul(x, x);
        let s = b.add(p, x);
        b.output("o", s);
        let g = b.finish();
        let m = AreaModel::new();
        let all = m.block_area(&g);
        assert!((all - 0.84).abs() < 1e-9);
        let only_add = m.area_of(&g, |id| id.index() == 1);
        assert!((only_add - 0.04).abs() < 1e-9);
    }
}
