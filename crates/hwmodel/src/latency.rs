//! Software (single-issue processor) latency table.

use ise_ir::{Dfg, Opcode, Program};

/// Per-operation latency, in cycles, of the execution stage of a single-issue embedded
/// processor.
///
/// These values model a typical 32-bit RISC pipeline of the paper's era (MIPS-like or
/// ARM9-like): single-cycle ALU, two-cycle multiplier, long iterative divider, two-cycle
/// load-use latency. The accumulated values of a cut estimate its execution time in
/// software (Section 7 of the paper).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SoftwareLatencyModel {
    alu: u32,
    shift: u32,
    compare: u32,
    select: u32,
    multiply: u32,
    mac: u32,
    divide: u32,
    load: u32,
    store: u32,
    subword: u32,
    copy: u32,
}

impl Default for SoftwareLatencyModel {
    fn default() -> Self {
        SoftwareLatencyModel {
            alu: 1,
            shift: 1,
            compare: 1,
            select: 1,
            multiply: 2,
            mac: 3,
            divide: 18,
            load: 2,
            store: 1,
            subword: 1,
            copy: 1,
        }
    }
}

impl SoftwareLatencyModel {
    /// Creates the default single-issue latency model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a model where every operation costs exactly one cycle, useful for
    /// analytical tests where the merit must equal `|S| - ceil(critical path)`.
    #[must_use]
    pub fn unit() -> Self {
        SoftwareLatencyModel {
            alu: 1,
            shift: 1,
            compare: 1,
            select: 1,
            multiply: 1,
            mac: 1,
            divide: 1,
            load: 1,
            store: 1,
            subword: 1,
            copy: 1,
        }
    }

    /// Latency of `opcode` in cycles.
    #[must_use]
    pub fn cycles(&self, opcode: Opcode) -> u32 {
        use Opcode::*;
        match opcode {
            Add | Sub | Neg | Abs | Min | Max | And | Or | Xor | Not => self.alu,
            Shl | Lshr | Ashr => self.shift,
            Eq | Ne | Lt | Le | Gt | Ge | Ltu | Geu => self.compare,
            Select => self.select,
            Mul | MulHi => self.multiply,
            Mac => self.mac,
            Div | Rem => self.divide,
            Load => self.load,
            Store => self.store,
            SextB | SextH | ZextB | ZextH | TruncB | TruncH => self.subword,
            Copy | Const => self.copy,
            // A collapsed AFU executes in the cycles recorded by its specification; the
            // software model conservatively charges a single issue slot.
            Afu { .. } => 1,
            // Calls dominate their surroundings; other opaque operations (address
            // arithmetic, allocas) cost one ALU slot. The exact charge never affects
            // cut selection because opaque nodes sit outside every candidate cut and
            // contribute identically to baseline and extended schedules.
            Opaque(op) => match op {
                ise_ir::OpaqueOp::Call | ise_ir::OpaqueOp::CallVoid => self.divide,
                ise_ir::OpaqueOp::Gep | ise_ir::OpaqueOp::Alloca | ise_ir::OpaqueOp::Unknown => {
                    self.alu
                }
            },
        }
    }

    /// Total software cycles of one execution of a basic block (sum over all nodes).
    #[must_use]
    pub fn block_cycles(&self, dfg: &Dfg) -> u64 {
        dfg.iter_nodes()
            .map(|(_, n)| u64::from(self.cycles(n.opcode)))
            .sum()
    }

    /// Dynamic software cycles of a basic block: per-execution cost times the profiled
    /// execution count.
    #[must_use]
    pub fn block_dynamic_cycles(&self, dfg: &Dfg) -> u64 {
        self.block_cycles(dfg) * dfg.exec_count()
    }

    /// Dynamic software cycles of a whole program (baseline, without any ISE).
    #[must_use]
    pub fn program_dynamic_cycles(&self, program: &Program) -> u64 {
        program
            .blocks()
            .iter()
            .map(|b| self.block_dynamic_cycles(b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::DfgBuilder;

    #[test]
    fn default_table_orders_costs_sensibly() {
        let m = SoftwareLatencyModel::new();
        assert!(m.cycles(Opcode::Add) <= m.cycles(Opcode::Mul));
        assert!(m.cycles(Opcode::Mul) < m.cycles(Opcode::Div));
        assert_eq!(m.cycles(Opcode::And), 1);
        assert_eq!(m.cycles(Opcode::Load), 2);
    }

    #[test]
    fn unit_model_charges_one_cycle_everywhere() {
        let m = SoftwareLatencyModel::unit();
        for &op in Opcode::all_primitive() {
            assert_eq!(m.cycles(op), 1, "{op}");
        }
    }

    #[test]
    fn block_cycles_accumulate_and_scale_with_frequency() {
        let mut b = DfgBuilder::new("t");
        b.exec_count(10);
        let x = b.input("x");
        let y = b.input("y");
        let p = b.mul(x, y);
        let s = b.add(p, y);
        b.output("o", s);
        let g = b.finish();
        let m = SoftwareLatencyModel::new();
        assert_eq!(m.block_cycles(&g), 3);
        assert_eq!(m.block_dynamic_cycles(&g), 30);
    }

    #[test]
    fn program_cycles_sum_blocks() {
        let mut p = Program::new("app");
        let mut b = DfgBuilder::new("a");
        b.exec_count(5);
        let x = b.input("x");
        let v = b.add(x, b.imm(1));
        b.output("o", v);
        p.add_block(b.finish());
        let mut b = DfgBuilder::new("b");
        b.exec_count(2);
        let x = b.input("x");
        let v = b.div(x, b.imm(3));
        b.output("o", v);
        p.add_block(b.finish());
        let m = SoftwareLatencyModel::new();
        assert_eq!(m.program_dynamic_cycles(&p), 5 + 2 * 18);
    }
}
