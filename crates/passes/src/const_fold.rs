//! Constant folding on dataflow graphs.

use ise_ir::{Dfg, Opcode, Operand};

/// Folds operations whose operands are all immediates, rewriting their consumers to use
/// the computed immediate directly. Returns the number of nodes folded (the folded nodes
/// themselves become dead and can be removed by a following DCE pass).
///
/// Division and remainder by a zero immediate are left untouched rather than folded, so
/// that the runtime behaviour (an error reported by the interpreter) is preserved.
pub fn fold_constants(dfg: &mut Dfg) -> usize {
    let mut folded_value: Vec<Option<i64>> = vec![None; dfg.node_count()];
    let mut folded = 0;

    for index in 0..dfg.node_count() {
        let id = ise_ir::NodeId::new(index);
        // Resolve operands through already-folded producers.
        let node = dfg.node(id).clone();
        let resolve = |operand: &Operand| -> Option<i64> {
            match operand {
                Operand::Imm(v) => Some(*v),
                Operand::Node(m) => folded_value[m.index()],
                Operand::Input(_) => None,
            }
        };
        let values: Option<Vec<i64>> = node.operands.iter().map(resolve).collect();
        let Some(values) = values else { continue };
        let Some(result) = evaluate_constant(node.opcode, &values) else {
            continue;
        };
        folded_value[index] = Some(result);
        folded += 1;
    }

    if folded == 0 {
        return 0;
    }
    // Rewrite consumers (and outputs) of folded nodes to use immediates.
    for index in 0..dfg.node_count() {
        let id = ise_ir::NodeId::new(index);
        let node = dfg.node(id);
        let needs_rewrite = node
            .operands
            .iter()
            .any(|o| matches!(o, Operand::Node(m) if folded_value[m.index()].is_some()));
        if !needs_rewrite {
            continue;
        }
        let mut node = node.clone();
        for operand in &mut node.operands {
            if let Operand::Node(m) = operand {
                if let Some(value) = folded_value[m.index()] {
                    *operand = Operand::Imm(value);
                }
            }
        }
        dfg.replace_node(id, node);
    }
    folded
}

/// Evaluates one operation on 32-bit constants; returns `None` for operations that cannot
/// or should not be folded (memory, stores, AFUs, division by zero).
fn evaluate_constant(opcode: Opcode, values: &[i64]) -> Option<i64> {
    let v = |k: usize| values[k] as i32;
    let result: i32 = match opcode {
        Opcode::Add => v(0).wrapping_add(v(1)),
        Opcode::Sub => v(0).wrapping_sub(v(1)),
        Opcode::Mul => v(0).wrapping_mul(v(1)),
        Opcode::MulHi => ((i64::from(v(0)) * i64::from(v(1))) >> 32) as i32,
        Opcode::Mac => v(0).wrapping_mul(v(1)).wrapping_add(v(2)),
        Opcode::Div => {
            if v(1) == 0 {
                return None;
            }
            v(0).wrapping_div(v(1))
        }
        Opcode::Rem => {
            if v(1) == 0 {
                return None;
            }
            v(0).wrapping_rem(v(1))
        }
        Opcode::Neg => v(0).wrapping_neg(),
        Opcode::Abs => v(0).wrapping_abs(),
        Opcode::Min => v(0).min(v(1)),
        Opcode::Max => v(0).max(v(1)),
        Opcode::And => v(0) & v(1),
        Opcode::Or => v(0) | v(1),
        Opcode::Xor => v(0) ^ v(1),
        Opcode::Not => !v(0),
        Opcode::Shl => v(0).wrapping_shl(v(1) as u32 & 31),
        Opcode::Lshr => ((v(0) as u32).wrapping_shr(v(1) as u32 & 31)) as i32,
        Opcode::Ashr => v(0).wrapping_shr(v(1) as u32 & 31),
        Opcode::Eq => i32::from(v(0) == v(1)),
        Opcode::Ne => i32::from(v(0) != v(1)),
        Opcode::Lt => i32::from(v(0) < v(1)),
        Opcode::Le => i32::from(v(0) <= v(1)),
        Opcode::Gt => i32::from(v(0) > v(1)),
        Opcode::Ge => i32::from(v(0) >= v(1)),
        Opcode::Ltu => i32::from((v(0) as u32) < v(1) as u32),
        Opcode::Geu => i32::from(v(0) as u32 >= v(1) as u32),
        Opcode::Select => {
            if v(0) != 0 {
                v(1)
            } else {
                v(2)
            }
        }
        Opcode::SextB => v(0) as i8 as i32,
        Opcode::SextH => v(0) as i16 as i32,
        Opcode::ZextB => i32::from(v(0) as u8),
        Opcode::ZextH => i32::from(v(0) as u16),
        Opcode::TruncB => v(0) & 0xff,
        Opcode::TruncH => v(0) & 0xffff,
        Opcode::Copy | Opcode::Const => v(0),
        Opcode::Load | Opcode::Store | Opcode::Afu { .. } | Opcode::Opaque(_) => return None,
    };
    Some(i64::from(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dce::eliminate_dead_code;
    use ise_ir::DfgBuilder;

    #[test]
    fn folds_constant_subexpressions() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let c1 = b.constant(6);
        let c2 = b.shl(c1, b.imm(2)); // 24
        let sum = b.add(x, c2);
        b.output("o", sum);
        let mut g = b.finish();
        let folded = fold_constants(&mut g);
        assert_eq!(folded, 2);
        let removed = eliminate_dead_code(&mut g);
        assert_eq!(removed, 2);
        assert_eq!(g.node_count(), 1);
        // The remaining add now has an immediate operand of 24.
        let node = g.node(ise_ir::NodeId::new(0));
        assert!(node.operands.contains(&Operand::Imm(24)));
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let mut b = DfgBuilder::new("t");
        let c = b.constant(5);
        let d = b.div(c, b.imm(0));
        b.output("o", d);
        let mut g = b.finish();
        // The constant node folds; the division by zero does not.
        assert_eq!(fold_constants(&mut g), 1);
        assert_eq!(g.node(ise_ir::NodeId::new(1)).opcode, Opcode::Div);
    }

    #[test]
    fn graphs_without_constants_are_untouched() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let s = b.add(x, y);
        b.output("o", s);
        let mut g = b.finish();
        assert_eq!(fold_constants(&mut g), 0);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn folded_values_propagate_to_outputs_through_consumers() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let c = b.constant(10);
        let doubled = b.shl(c, b.imm(1));
        let gated = b.select(x, doubled, b.imm(0));
        b.output("o", gated);
        let mut g = b.finish();
        assert_eq!(fold_constants(&mut g), 2);
        eliminate_dead_code(&mut g);
        assert_eq!(g.node_count(), 1);
        assert!(g
            .node(ise_ir::NodeId::new(0))
            .operands
            .contains(&Operand::Imm(20)));
        assert!(g.validate().is_ok());
    }
}
