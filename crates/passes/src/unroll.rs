//! Loop-body unrolling at the dataflow-graph level.
//!
//! The paper's conclusions point out that instruction-level-parallelism transformations
//! such as unrolling produce very large basic blocks, which is where heuristic variants
//! of the identification algorithm become necessary. This pass replicates a loop-body
//! dataflow graph `factor` times, wiring the loop-carried values (given as
//! output-name → input-name pairs) from one copy to the next, and exposing the remaining
//! inputs/outputs per iteration.

use std::collections::BTreeMap;

use ise_ir::{Dfg, Node, NodeId, Operand};

/// Replicates `body` `factor` times.
///
/// `feedback` lists the loop-carried dependences as `(output_name, input_name)` pairs:
/// the named output of iteration `i` feeds the named input of iteration `i + 1`. Inputs
/// that are not fed back become fresh inputs `name@i` of the unrolled graph; outputs of
/// the last iteration (and non-feedback outputs of every iteration) become outputs
/// `name@i`.
///
/// # Panics
///
/// Panics if `factor` is zero or if a feedback pair names an unknown input or output.
#[must_use]
pub fn unroll_dfg(body: &Dfg, factor: usize, feedback: &[(&str, &str)]) -> Dfg {
    assert!(factor >= 1, "unroll factor must be at least one");
    for (output, input) in feedback {
        assert!(
            body.iter_outputs().any(|o| o.name == *output),
            "feedback output `{output}` does not exist"
        );
        assert!(
            body.iter_inputs().any(|(_, v)| v.name == *input),
            "feedback input `{input}` does not exist"
        );
    }

    let mut unrolled = Dfg::new(format!("{}.x{}", body.name(), factor));
    unrolled.set_exec_count(body.exec_count() / factor as u64);

    // Values carried into the next iteration, keyed by the *input* name they feed.
    let mut carried: BTreeMap<String, Operand> = BTreeMap::new();

    for iteration in 0..factor {
        // Map the body's inputs to values in the unrolled graph.
        let mut input_map: BTreeMap<usize, Operand> = BTreeMap::new();
        for (port, var) in body.iter_inputs() {
            let value = if let Some(value) = carried.get(&var.name) {
                *value
            } else {
                Operand::Input(unrolled.add_input(format!("{}@{iteration}", var.name)))
            };
            input_map.insert(port.index(), value);
        }
        // Copy the body nodes.
        let mut node_map: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        for (id, node) in body.iter_nodes() {
            let operands = node
                .operands
                .iter()
                .map(|operand| match *operand {
                    Operand::Node(n) => Operand::Node(node_map[&n]),
                    Operand::Input(p) => input_map[&p.index()],
                    Operand::Imm(v) => Operand::Imm(v),
                })
                .collect();
            let new_id = unrolled.add_node(Node {
                opcode: node.opcode,
                operands,
                name: node.name.clone(),
            });
            node_map.insert(id, new_id);
        }
        // Resolve this iteration's outputs.
        let resolve = |operand: &Operand| -> Operand {
            match *operand {
                Operand::Node(n) => Operand::Node(node_map[&n]),
                Operand::Input(p) => input_map[&p.index()],
                Operand::Imm(v) => Operand::Imm(v),
            }
        };
        let mut next_carried: BTreeMap<String, Operand> = BTreeMap::new();
        for output in body.iter_outputs() {
            let value = resolve(&output.source);
            let fed_back = feedback
                .iter()
                .find(|(out_name, _)| *out_name == output.name);
            match fed_back {
                Some((_, input_name)) if iteration + 1 < factor => {
                    next_carried.insert((*input_name).to_string(), value);
                }
                _ => {
                    unrolled.add_output(format!("{}@{iteration}", output.name), value);
                }
            }
        }
        carried = next_carried;
    }
    unrolled
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::interp::Evaluator;
    use ise_ir::DfgBuilder;
    use std::collections::BTreeMap as Map;

    /// acc' = acc + x * x
    fn mac_body() -> Dfg {
        let mut b = DfgBuilder::new("mac");
        b.exec_count(1000);
        let acc = b.input("acc");
        let x = b.input("x");
        let sq = b.mul(x, x);
        let sum = b.add(acc, sq);
        b.output("acc", sum);
        b.finish()
    }

    #[test]
    fn unrolling_chains_the_accumulator() {
        let body = mac_body();
        let unrolled = unroll_dfg(&body, 4, &[("acc", "acc")]);
        assert!(unrolled.validate().is_ok());
        assert_eq!(unrolled.node_count(), 8);
        // One accumulator input plus one x per iteration; a single final accumulator output.
        assert_eq!(unrolled.input_count(), 5);
        assert_eq!(unrolled.output_count(), 1);
        assert_eq!(unrolled.exec_count(), 250);

        let mut evaluator = Evaluator::new();
        let inputs: Map<String, i32> = [
            ("acc@0".to_string(), 10),
            ("x@0".to_string(), 1),
            ("x@1".to_string(), 2),
            ("x@2".to_string(), 3),
            ("x@3".to_string(), 4),
        ]
        .into();
        let out = evaluator.eval_block(&unrolled, &inputs).unwrap().outputs;
        assert_eq!(out["acc@3"], 10 + 1 + 4 + 9 + 16);
    }

    #[test]
    fn factor_one_is_a_renamed_copy() {
        let body = mac_body();
        let unrolled = unroll_dfg(&body, 1, &[("acc", "acc")]);
        assert_eq!(unrolled.node_count(), body.node_count());
        assert_eq!(unrolled.input_count(), body.input_count());
        assert_eq!(unrolled.output_count(), body.output_count());
    }

    #[test]
    fn non_feedback_outputs_appear_every_iteration() {
        let mut b = DfgBuilder::new("body");
        let x = b.input("x");
        let doubled = b.shl(x, b.imm(1));
        let flag = b.gt(doubled, b.imm(100));
        b.output("x", doubled);
        b.output("flag", flag);
        let body = b.finish();
        let unrolled = unroll_dfg(&body, 3, &[("x", "x")]);
        // `flag` is emitted three times, `x` only for the last iteration.
        assert_eq!(unrolled.output_count(), 4);
        assert_eq!(unrolled.input_count(), 1);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn unknown_feedback_names_are_rejected() {
        let body = mac_body();
        let _ = unroll_dfg(&body, 2, &[("nope", "acc")]);
    }
}
