//! If-conversion: turning control dependences into `SEL` data dependences.
//!
//! The pass repeatedly looks for the two classic acyclic patterns and merges them into
//! their predecessor, predicating the side-effect-free instructions of the branches and
//! joining divergent register definitions with [`ise_ir::Opcode::Select`] nodes:
//!
//! * a **diamond**: `A → {T, E} → J`, where `T` and `E` are straight-line blocks whose
//!   only predecessor is `A`;
//! * a **triangle**: `A → {T, J}` with `T → J`, where `T`'s only predecessor is `A`.
//!
//! Blocks containing stores are not merged (speculating a store would change memory
//! behaviour); this is the same conservative policy a compiler without predicated stores
//! must apply. The pass iterates to a fixed point, so nested `if`s collapse into a single
//! large block — the mechanism that produces blocks like Fig. 3 of the paper.

use std::collections::BTreeMap;

use ise_ir::{BlockId, Cfg, CfgBlock, Inst, Opcode, Reg, RegOrImm, Terminator};

/// Statistics of one if-conversion run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IfConvertStats {
    /// Number of diamonds merged.
    pub diamonds: usize,
    /// Number of triangles merged.
    pub triangles: usize,
    /// Number of `SEL` instructions inserted.
    pub selects_inserted: usize,
}

/// Runs if-conversion to a fixed point on `cfg`, in place.
pub fn if_convert(cfg: &mut Cfg) -> IfConvertStats {
    let mut stats = IfConvertStats::default();
    loop {
        if !convert_one(cfg, &mut stats) {
            break;
        }
    }
    stats
}

/// A block is a merge candidate when it is side-effect free (no stores) and has `head` as
/// its unique predecessor.
fn mergeable(cfg: &Cfg, head: BlockId, candidate: BlockId) -> bool {
    candidate != head
        && cfg.predecessors(candidate) == vec![head]
        && cfg
            .block(candidate)
            .insts
            .iter()
            .all(|inst| !inst.opcode.has_side_effect())
}

fn single_successor(block: &CfgBlock) -> Option<BlockId> {
    match block.terminator {
        Terminator::Jump(target) => Some(target),
        _ => None,
    }
}

/// Registers that are read outside the blocks listed in `exclude` (by instructions or by
/// any terminator). Only these are worth joining with a `SEL` after a merge; temporaries
/// that were private to an absorbed arm must not be joined, as that would fabricate reads
/// of undefined values.
fn observable_regs(cfg: &Cfg, exclude: &[BlockId]) -> std::collections::BTreeSet<Reg> {
    let mut observable = std::collections::BTreeSet::new();
    for (index, block) in cfg.blocks.iter().enumerate() {
        let id = BlockId(index as u32);
        if exclude.contains(&id) {
            continue;
        }
        observable.extend(cfg.upward_exposed_regs(id));
        match &block.terminator {
            Terminator::Branch { cond, .. } => {
                observable.insert(*cond);
            }
            Terminator::Return(regs) => observable.extend(regs.iter().copied()),
            Terminator::Jump(_) => {}
        }
    }
    observable
}

fn next_free_reg(cfg: &Cfg) -> u32 {
    let mut max = 0;
    for block in &cfg.blocks {
        for inst in &block.insts {
            if let Some(Reg(r)) = inst.dst {
                max = max.max(r + 1);
            }
            for arg in &inst.args {
                if let RegOrImm::Reg(Reg(r)) = arg {
                    max = max.max(r + 1);
                }
            }
        }
        match &block.terminator {
            Terminator::Branch { cond: Reg(r), .. } => max = max.max(r + 1),
            Terminator::Return(regs) => {
                for Reg(r) in regs {
                    max = max.max(r + 1);
                }
            }
            Terminator::Jump(_) => {}
        }
    }
    max
}

/// Appends `source`'s instructions to `dest_insts`, renaming every defined register to a
/// fresh one so the other arm's values stay observable. Returns the final value of each
/// renamed register.
fn inline_arm(
    source: &CfgBlock,
    dest_insts: &mut Vec<Inst>,
    fresh: &mut u32,
) -> BTreeMap<Reg, Reg> {
    let mut renamed: BTreeMap<Reg, Reg> = BTreeMap::new();
    for inst in &source.insts {
        let args = inst
            .args
            .iter()
            .map(|arg| match arg {
                RegOrImm::Reg(r) => RegOrImm::Reg(*renamed.get(r).unwrap_or(r)),
                imm => *imm,
            })
            .collect();
        let dst = inst.dst.map(|dst| {
            let new = Reg(*fresh);
            *fresh += 1;
            renamed.insert(dst, new);
            new
        });
        dest_insts.push(Inst {
            dst,
            opcode: inst.opcode,
            args,
        });
    }
    renamed
}

fn convert_one(cfg: &mut Cfg, stats: &mut IfConvertStats) -> bool {
    let block_ids: Vec<BlockId> = (0..cfg.blocks.len()).map(|i| BlockId(i as u32)).collect();
    for &head in &block_ids {
        let Terminator::Branch {
            cond,
            then_block,
            else_block,
        } = cfg.block(head).terminator.clone()
        else {
            continue;
        };
        if then_block == else_block {
            // Degenerate branch: both arms identical, just jump.
            cfg.blocks[head.index()].terminator = Terminator::Jump(then_block);
            return true;
        }

        // Diamond: both arms mergeable and joining at the same block.
        let diamond_join = match (
            mergeable(cfg, head, then_block),
            mergeable(cfg, head, else_block),
            single_successor(cfg.block(then_block)),
            single_successor(cfg.block(else_block)),
        ) {
            (true, true, Some(jt), Some(je))
                if jt == je && jt != then_block && jt != else_block =>
            {
                Some(jt)
            }
            _ => None,
        };
        if let Some(join) = diamond_join {
            let observable = observable_regs(cfg, &[head, then_block, else_block]);
            let mut fresh = next_free_reg(cfg);
            let then_blk = cfg.block(then_block).clone();
            let else_blk = cfg.block(else_block).clone();
            let mut insts = cfg.block(head).insts.clone();
            let then_vals = inline_arm(&then_blk, &mut insts, &mut fresh);
            let else_vals = inline_arm(&else_blk, &mut insts, &mut fresh);
            // Join divergent definitions with selects (only values observable after the
            // merged construct need a join).
            let mut defined: Vec<Reg> = then_vals.keys().chain(else_vals.keys()).copied().collect();
            defined.sort_unstable();
            defined.dedup();
            defined.retain(|reg| observable.contains(reg));
            for reg in defined {
                let then_value = then_vals.get(&reg).copied().unwrap_or(reg);
                let else_value = else_vals.get(&reg).copied().unwrap_or(reg);
                insts.push(Inst {
                    dst: Some(reg),
                    opcode: Opcode::Select,
                    args: vec![cond.into(), then_value.into(), else_value.into()],
                });
                stats.selects_inserted += 1;
            }
            let head_block = &mut cfg.blocks[head.index()];
            head_block.insts = insts;
            head_block.terminator = Terminator::Jump(join);
            // Disconnect the absorbed arms (they become unreachable empty shells).
            cfg.blocks[then_block.index()].insts.clear();
            cfg.blocks[then_block.index()].terminator = Terminator::Return(Vec::new());
            cfg.blocks[else_block.index()].insts.clear();
            cfg.blocks[else_block.index()].terminator = Terminator::Return(Vec::new());
            stats.diamonds += 1;
            return true;
        }

        // Triangle: one mergeable arm that jumps straight to the other successor.
        let triangle = if mergeable(cfg, head, then_block)
            && single_successor(cfg.block(then_block)) == Some(else_block)
        {
            Some((then_block, else_block, false))
        } else if mergeable(cfg, head, else_block)
            && single_successor(cfg.block(else_block)) == Some(then_block)
        {
            Some((else_block, then_block, true))
        } else {
            None
        };
        if let Some((arm, join, arm_is_else)) = triangle {
            let observable = observable_regs(cfg, &[head, arm]);
            let mut fresh = next_free_reg(cfg);
            let arm_blk = cfg.block(arm).clone();
            let mut insts = cfg.block(head).insts.clone();
            let arm_vals = inline_arm(&arm_blk, &mut insts, &mut fresh);
            for (reg, arm_value) in arm_vals {
                if !observable.contains(&reg) {
                    continue;
                }
                let (then_value, else_value) = if arm_is_else {
                    (reg, arm_value)
                } else {
                    (arm_value, reg)
                };
                insts.push(Inst {
                    dst: Some(reg),
                    opcode: Opcode::Select,
                    args: vec![cond.into(), then_value.into(), else_value.into()],
                });
                stats.selects_inserted += 1;
            }
            let head_block = &mut cfg.blocks[head.index()];
            head_block.insts = insts;
            head_block.terminator = Terminator::Jump(join);
            cfg.blocks[arm.index()].insts.clear();
            cfg.blocks[arm.index()].terminator = Terminator::Return(Vec::new());
            stats.triangles += 1;
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::interp::Evaluator;
    use std::collections::BTreeMap as Map;

    /// if (a > b) r = a - b; else r = b - a; return r   (|a - b| as a diamond)
    fn abs_diff_cfg() -> Cfg {
        let mut cfg = Cfg::new("abs_diff");
        let a = Reg(0);
        let b = Reg(1);
        let cond = Reg(2);
        let r = Reg(3);
        cfg.add_block(CfgBlock {
            name: "entry".into(),
            insts: vec![Inst {
                dst: Some(cond),
                opcode: Opcode::Gt,
                args: vec![a.into(), b.into()],
            }],
            terminator: Terminator::Branch {
                cond,
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
            exec_count: 100,
        });
        cfg.add_block(CfgBlock {
            name: "then".into(),
            insts: vec![Inst {
                dst: Some(r),
                opcode: Opcode::Sub,
                args: vec![a.into(), b.into()],
            }],
            terminator: Terminator::Jump(BlockId(3)),
            exec_count: 50,
        });
        cfg.add_block(CfgBlock {
            name: "else".into(),
            insts: vec![Inst {
                dst: Some(r),
                opcode: Opcode::Sub,
                args: vec![b.into(), a.into()],
            }],
            terminator: Terminator::Jump(BlockId(3)),
            exec_count: 50,
        });
        cfg.add_block(CfgBlock {
            name: "join".into(),
            insts: vec![],
            terminator: Terminator::Return(vec![r]),
            exec_count: 100,
        });
        cfg
    }

    #[test]
    fn diamond_becomes_straight_line_code_with_a_select() {
        let mut cfg = abs_diff_cfg();
        let stats = if_convert(&mut cfg);
        assert_eq!(stats.diamonds, 1);
        assert_eq!(stats.selects_inserted, 1);
        let entry = cfg.block(BlockId(0));
        assert!(matches!(entry.terminator, Terminator::Jump(BlockId(3))));
        assert!(entry.insts.iter().any(|i| i.opcode == Opcode::Select));

        // The merged block computes |a - b| for both orderings of the inputs.
        let dfg = cfg.block_to_dfg(BlockId(0));
        dfg.validate().expect("valid graph");
        let mut evaluator = Evaluator::new();
        for (a, b, expected) in [(9, 4, 5), (4, 9, 5), (7, 7, 0)] {
            let inputs: Map<String, i32> = [("r0".to_string(), a), ("r1".to_string(), b)].into();
            let out = evaluator.eval_block(&dfg, &inputs).unwrap().outputs;
            assert_eq!(out["r3"], expected, "a={a} b={b}");
        }
    }

    #[test]
    fn triangle_is_converted() {
        // if (x < 0) x = -x; return x
        let mut cfg = Cfg::new("abs");
        let x = Reg(0);
        let cond = Reg(1);
        cfg.add_block(CfgBlock {
            name: "entry".into(),
            insts: vec![Inst {
                dst: Some(cond),
                opcode: Opcode::Lt,
                args: vec![x.into(), 0i64.into()],
            }],
            terminator: Terminator::Branch {
                cond,
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
            exec_count: 10,
        });
        cfg.add_block(CfgBlock {
            name: "negate".into(),
            insts: vec![Inst {
                dst: Some(x),
                opcode: Opcode::Neg,
                args: vec![x.into()],
            }],
            terminator: Terminator::Jump(BlockId(2)),
            exec_count: 5,
        });
        cfg.add_block(CfgBlock {
            name: "exit".into(),
            insts: vec![],
            terminator: Terminator::Return(vec![x]),
            exec_count: 10,
        });
        let stats = if_convert(&mut cfg);
        assert_eq!(stats.triangles, 1);
        let dfg = cfg.block_to_dfg(BlockId(0));
        let mut evaluator = Evaluator::new();
        for (value, expected) in [(-5, 5), (5, 5), (0, 0)] {
            let inputs: Map<String, i32> = [("r0".to_string(), value)].into();
            let out = evaluator.eval_block(&dfg, &inputs).unwrap().outputs;
            assert_eq!(out["r0"], expected);
        }
    }

    #[test]
    fn blocks_with_stores_are_not_speculated() {
        let mut cfg = Cfg::new("guarded_store");
        let p = Reg(0);
        let v = Reg(1);
        let cond = Reg(2);
        cfg.add_block(CfgBlock {
            name: "entry".into(),
            insts: vec![Inst {
                dst: Some(cond),
                opcode: Opcode::Ne,
                args: vec![p.into(), 0i64.into()],
            }],
            terminator: Terminator::Branch {
                cond,
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
            exec_count: 10,
        });
        cfg.add_block(CfgBlock {
            name: "store".into(),
            insts: vec![Inst {
                dst: None,
                opcode: Opcode::Store,
                args: vec![p.into(), v.into()],
            }],
            terminator: Terminator::Jump(BlockId(2)),
            exec_count: 5,
        });
        cfg.add_block(CfgBlock {
            name: "exit".into(),
            insts: vec![],
            terminator: Terminator::Return(vec![v]),
            exec_count: 10,
        });
        let stats = if_convert(&mut cfg);
        assert_eq!(stats.triangles, 0);
        assert_eq!(stats.diamonds, 0);
        assert!(matches!(
            cfg.block(BlockId(0)).terminator,
            Terminator::Branch { .. }
        ));
    }

    #[test]
    fn nested_ifs_collapse_to_a_fixed_point() {
        // if (c1) { if (c2) r = a + b; else r = a - b; } else r = a ^ b; return r
        let mut cfg = Cfg::new("nested");
        let a = Reg(0);
        let b = Reg(1);
        let c1 = Reg(2);
        let c2 = Reg(3);
        let r = Reg(4);
        cfg.add_block(CfgBlock {
            name: "entry".into(),
            insts: vec![],
            terminator: Terminator::Branch {
                cond: c1,
                then_block: BlockId(1),
                else_block: BlockId(4),
            },
            exec_count: 10,
        });
        cfg.add_block(CfgBlock {
            name: "inner_if".into(),
            insts: vec![],
            terminator: Terminator::Branch {
                cond: c2,
                then_block: BlockId(2),
                else_block: BlockId(3),
            },
            exec_count: 6,
        });
        cfg.add_block(CfgBlock {
            name: "add".into(),
            insts: vec![Inst {
                dst: Some(r),
                opcode: Opcode::Add,
                args: vec![a.into(), b.into()],
            }],
            terminator: Terminator::Jump(BlockId(5)),
            exec_count: 3,
        });
        cfg.add_block(CfgBlock {
            name: "sub".into(),
            insts: vec![Inst {
                dst: Some(r),
                opcode: Opcode::Sub,
                args: vec![a.into(), b.into()],
            }],
            terminator: Terminator::Jump(BlockId(5)),
            exec_count: 3,
        });
        cfg.add_block(CfgBlock {
            name: "xor".into(),
            insts: vec![Inst {
                dst: Some(r),
                opcode: Opcode::Xor,
                args: vec![a.into(), b.into()],
            }],
            terminator: Terminator::Jump(BlockId(5)),
            exec_count: 4,
        });
        cfg.add_block(CfgBlock {
            name: "exit".into(),
            insts: vec![],
            terminator: Terminator::Return(vec![r]),
            exec_count: 10,
        });

        let stats = if_convert(&mut cfg);
        assert!(stats.diamonds + stats.triangles >= 2);
        // After conversion the entry block reaches the exit without branching.
        assert!(matches!(
            cfg.block(BlockId(0)).terminator,
            Terminator::Jump(BlockId(5))
        ));
        let dfg = cfg.block_to_dfg(BlockId(0));
        assert!(dfg.count_opcode(Opcode::Select) >= 2);
        let mut evaluator = Evaluator::new();
        for (c1v, c2v, expected) in [(1, 1, 9 + 4), (1, 0, 9 - 4), (0, 1, 9 ^ 4), (0, 0, 9 ^ 4)] {
            let inputs: Map<String, i32> = [
                ("r0".to_string(), 9),
                ("r1".to_string(), 4),
                ("r2".to_string(), c1v),
                ("r3".to_string(), c2v),
            ]
            .into();
            let out = evaluator.eval_block(&dfg, &inputs).unwrap().outputs;
            assert_eq!(out["r4"], expected, "c1={c1v} c2={c2v}");
        }
    }
}
