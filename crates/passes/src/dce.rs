//! Dead-code elimination on dataflow graphs.

use std::collections::BTreeMap;

use ise_ir::{Dfg, Node, NodeId, Operand};

/// Removes every operation whose result is transitively unused by any block output or
/// side-effecting node. Returns the number of nodes removed.
///
/// The relative order of the remaining nodes is preserved, so the graph stays in
/// def-before-use order.
pub fn eliminate_dead_code(dfg: &mut Dfg) -> usize {
    let n = dfg.node_count();
    let mut live = vec![false; n];
    let mut worklist: Vec<NodeId> = Vec::new();
    for (id, node) in dfg.iter_nodes() {
        if node.opcode.has_side_effect() || dfg.is_output_source(id) {
            live[id.index()] = true;
            worklist.push(id);
        }
    }
    while let Some(id) = worklist.pop() {
        for pred in dfg.node(id).node_operands() {
            if !live[pred.index()] {
                live[pred.index()] = true;
                worklist.push(pred);
            }
        }
    }

    let removed = live.iter().filter(|&&l| !l).count();
    if removed == 0 {
        return 0;
    }

    // Rebuild the graph with only the live nodes.
    let mut rebuilt = Dfg::new(dfg.name().to_string());
    rebuilt.set_exec_count(dfg.exec_count());
    for (_, input) in dfg.iter_inputs() {
        rebuilt.add_input(input.name.clone());
    }
    let mut remap: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for (id, node) in dfg.iter_nodes() {
        if !live[id.index()] {
            continue;
        }
        let operands = node
            .operands
            .iter()
            .map(|operand| match *operand {
                Operand::Node(m) => Operand::Node(remap[&m]),
                other => other,
            })
            .collect();
        let new_id = rebuilt.add_node(Node {
            opcode: node.opcode,
            operands,
            name: node.name.clone(),
        });
        remap.insert(id, new_id);
    }
    for output in dfg.iter_outputs() {
        let source = match output.source {
            Operand::Node(m) => Operand::Node(remap[&m]),
            other => other,
        };
        rebuilt.add_output(output.name.clone(), source);
    }
    *dfg = rebuilt;
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::DfgBuilder;

    #[test]
    fn removes_transitively_dead_chains() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let live = b.add(x, b.imm(1));
        let dead1 = b.mul(x, x);
        let _dead2 = b.shl(dead1, b.imm(2));
        b.output("o", live);
        let mut g = b.finish();
        assert_eq!(eliminate_dead_code(&mut g), 2);
        assert_eq!(g.node_count(), 1);
        assert!(g.validate().is_ok());
        assert!(g.dead_nodes().is_empty());
        // A second run is a no-op.
        assert_eq!(eliminate_dead_code(&mut g), 0);
    }

    #[test]
    fn stores_and_their_operands_are_kept() {
        let mut b = DfgBuilder::new("t");
        let addr = b.input("addr");
        let x = b.input("x");
        let doubled = b.shl(x, b.imm(1));
        b.store(addr, doubled);
        let mut g = b.finish();
        assert_eq!(eliminate_dead_code(&mut g), 0);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn outputs_referencing_inputs_are_preserved() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let _dead = b.not(x);
        b.output("same", x);
        let mut g = b.finish();
        assert_eq!(eliminate_dead_code(&mut g), 1);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.output_count(), 1);
    }
}
