//! # ise-passes — IR transformation passes
//!
//! The paper's experimental flow compiles C to MachSUIF and preprocesses each function
//! with a classic *if-conversion* pass before extracting per-basic-block dataflow graphs:
//! converting control dependences into `SEL` data dependences is what creates the large
//! basic blocks (such as Fig. 3's adpcmdecode block) in which profitable instruction-set
//! extensions can be found. This crate provides that pass plus the usual clean-up and
//! block-enlarging transformations used around it:
//!
//! * [`if_convert`](if_convert()) — merge `if/then/else` diamonds and `if/then` triangles of a
//!   control-flow graph into straight-line code with [`ise_ir::Opcode::Select`] nodes;
//! * [`dce`] — dead-code elimination on dataflow graphs;
//! * [`const_fold`] — constant folding on dataflow graphs;
//! * [`unroll`] — replication of a loop-body dataflow graph with feedback wiring, used to
//!   build the very large blocks discussed in the paper's conclusions;
//! * [`verify`] — whole-program structural validation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod const_fold;
pub mod dce;
pub mod if_convert;
pub mod unroll;
pub mod verify;

pub use const_fold::fold_constants;
pub use dce::eliminate_dead_code;
pub use if_convert::if_convert;
pub use unroll::unroll_dfg;
pub use verify::verify_program;
