//! Whole-program structural verification.

use ise_ir::{IrError, Program};

/// A structural problem found in a program, with the index of the offending block.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyIssue {
    /// Index of the offending basic block (or `None` for AFU specifications).
    pub block_index: Option<usize>,
    /// The underlying IR error.
    pub error: IrError,
}

/// Validates every basic block and AFU specification of `program`, collecting all
/// problems instead of stopping at the first one.
#[must_use]
pub fn verify_program(program: &Program) -> Vec<VerifyIssue> {
    let mut issues = Vec::new();
    for (index, block) in program.blocks().iter().enumerate() {
        if let Err(error) = block.validate() {
            issues.push(VerifyIssue {
                block_index: Some(index),
                error,
            });
        }
    }
    for afu in program.afus() {
        if let Err(error) = afu.graph.validate() {
            issues.push(VerifyIssue {
                block_index: None,
                error,
            });
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::DfgBuilder;

    #[test]
    fn clean_programs_report_no_issues() {
        let mut p = Program::new("app");
        let mut b = DfgBuilder::new("bb");
        let x = b.input("x");
        let y = b.add(x, b.imm(1));
        b.output("y", y);
        p.add_block(b.finish());
        assert!(verify_program(&p).is_empty());
    }

    #[test]
    fn issues_carry_the_block_index() {
        let mut p = Program::new("app");
        let mut b = DfgBuilder::new("good");
        let x = b.input("x");
        let y = b.add(x, b.imm(1));
        b.output("y", y);
        p.add_block(b.finish());
        // A block whose output references a non-existent node.
        let mut bad = ise_ir::Dfg::new("bad");
        bad.add_output("ghost", ise_ir::Operand::Node(ise_ir::NodeId::new(7)));
        p.add_block(bad);
        let issues = verify_program(&p);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].block_index, Some(1));
    }
}
